// Package server implements the web-search middleware of the paper's
// HPR study (Section VI-C): an HTTP service that serves PQS-DA
// suggestions, records the searchers' query log for future profile
// training, and collects explicit 6-point relevance ratings of the
// suggestions it served.
//
// The serving path is non-blocking and bounded: the engine lives behind
// an atomic pointer, mutation (refresh/learn) happens on a clone that
// is hot-swapped in when ready, and every suggestion request carries a
// context deadline threaded down to the Eq. 15 CG solve and the
// hitting-time greedy loop. When the engine carries a suggestion cache
// (core.Engine.EnableCache), repeated and concurrent identical
// requests are served from memory; each hot-swap bumps the engine
// generation, which invalidates the previous snapshot's cache entries
// by construction.
//
// # API versions
//
// The canonical surface is versioned under /v1 (/v1/suggest,
// /v1/suggest/batch, /v1/feedback, /v1/log, /v1/learn, /v1/refresh,
// /v1/stats). Every error is the uniform envelope
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// The pre-versioning /api/* paths remain mounted as aliases of the same
// handlers; they answer identically but emit a "Deprecation: true"
// header and a Link to their successor. /v1/suggest/batch has no legacy
// alias (it postdates the /api surface).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/querylog"
	"repro/internal/slo"
)

// Server is the suggestion middleware. Create with New and mount via
// Handler.
type Server struct {
	// engine is the serving engine. Suggestion requests Load it without
	// any lock; mutators build a replacement off the serving path and
	// Store it — an in-flight request keeps using the engine it loaded,
	// which stays valid (engines are immutable once swapped in).
	engine atomic.Pointer[core.Engine]
	// swapMu serializes the clone→mutate→swap sequences of /v1/refresh
	// and /v1/learn against each other. The suggestion path never
	// takes it. Serialization also keeps engine generations strictly
	// increasing, which the suggestion cache's keying relies on.
	swapMu sync.Mutex
	// timeoutNs is the per-request suggestion deadline in nanoseconds
	// (0 = none), settable at runtime via SetRequestTimeout.
	timeoutNs atomic.Int64
	// slowQueryNs is the slow-query trace-log threshold (0 = off).
	slowQueryNs atomic.Int64
	// admission is the overload-protection layer (rate limiters,
	// concurrency gates, circuit breaker); nil means everything is
	// admitted. Installed via SetAdmission, read lock-free on the
	// serving path.
	admission atomic.Pointer[admission.Controller]
	// maxBodyBytes caps /v1 and /api POST bodies via http.MaxBytesReader
	// (0 = uncapped). Defaults to DefaultMaxBodyBytes.
	maxBodyBytes atomic.Int64
	// brownout designates the cheap diversification strategy that answers
	// breaker-open cache misses (see strategies.go); unset means those
	// requests shed with 503 as before.
	brownout brownoutState
	// batchSolve selects the /v1/suggest/batch execution model: grouped
	// multi-RHS solving via Engine.DoBatch (default) versus the legacy
	// independent-item path. See batch.go and SetBatchSolve.
	batchSolve atomic.Bool
	// sloState is the SLO subsystem installed by EnableSLO (nil when
	// disabled): burn-rate trackers, the wide-event flight recorder and
	// the evaluation loop (see slo.go).
	sloState atomic.Pointer[sloRuntime]

	stats serverStats
	// tel holds the per-instance metric registry and histograms backing
	// /metrics and the percentile sections of /v1/stats.
	tel *telemetry
	// traces is the ring of recent suggestion traces behind
	// /debug/traces.
	traces *obs.TraceRing
	// logger is the structured request logger (atomic so SetLogger is
	// safe while serving). Defaults to discard.
	logger atomic.Pointer[slog.Logger]
	// start anchors uptime reporting.
	start time.Time
	// pprofEnabled mounts net/http/pprof in Handler when set.
	pprofEnabled bool

	expvarOnce sync.Once
	expvarName string

	mu sync.Mutex
	// lastIngested is how many recorded entries have been handed to the
	// engine already.
	lastIngested int
	// recorded accumulates the query events observed through the
	// middleware (the experts' log in the paper's study).
	recorded querylog.Log
	// feedback accumulates explicit suggestion ratings.
	feedback []Feedback
	// sink, when set, receives every recorded entry and rating as TSV
	// lines for durable storage.
	sink io.Writer
}

// Feedback is one explicit rating of a served suggestion on the
// paper's 6-point scale {0, 0.2, 0.4, 0.6, 0.8, 1}.
type Feedback struct {
	User       string    `json:"user"`
	Query      string    `json:"query"`
	Suggestion string    `json:"suggestion"`
	Rating     float64   `json:"rating"`
	At         time.Time `json:"at"`
}

// New wraps an engine. sink may be nil; when set, recorded events and
// feedback are appended to it as TSV lines (control characters in
// user-supplied fields are backslash-escaped so one event is always one
// line).
func New(engine *core.Engine, sink io.Writer) *Server {
	s := &Server{sink: sink, start: time.Now()}
	s.engine.Store(engine)
	s.maxBodyBytes.Store(DefaultMaxBodyBytes)
	s.batchSolve.Store(true)
	s.tel = newTelemetry(s)
	s.traces = obs.NewTraceRing(defaultTraceRingSize)
	s.logger.Store(discardLogger())
	return s
}

// Engine returns the engine currently serving suggestions. Refresh and
// learn swap in a new engine, so holders of the returned pointer see a
// consistent—possibly slightly stale—snapshot.
func (s *Server) Engine() *core.Engine { return s.engine.Load() }

// SetRequestTimeout bounds every suggestion request: on overrun the
// handler stops the pipeline (mid-CG-solve if need be) and returns 504
// with the stage timings completed so far. Zero disables the deadline.
// Safe to call while serving.
func (s *Server) SetRequestTimeout(d time.Duration) { s.timeoutNs.Store(int64(d)) }

// RequestTimeout returns the configured per-request deadline.
func (s *Server) RequestTimeout() time.Duration { return time.Duration(s.timeoutNs.Load()) }

// Handler returns the HTTP handler with all routes mounted: the
// canonical /v1 surface, the deprecated /api aliases, health, and the
// observability endpoints (/metrics, /debug/traces, /debug/stats/reset,
// expvar, and /debug/pprof when EnablePProf was called). The whole mux
// is wrapped in the request-ID/logging middleware.
func (s *Server) Handler() http.Handler {
	s.publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	// /v1/health is the component-scoreboard readiness probe (see
	// health.go); deliberately outside admission control.
	mux.HandleFunc("GET /v1/health", s.handleHealthV1)
	// Routes shared by /v1 (canonical) and /api (deprecated alias).
	routes := []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{"GET", "/suggest", s.handleSuggestGet},
		{"POST", "/suggest", s.handleSuggestPost},
		{"POST", "/feedback", s.handleFeedback},
		{"POST", "/log", s.handleLog},
		{"POST", "/learn", s.handleLearn},
		{"POST", "/refresh", s.handleRefresh},
		{"GET", "/stats", s.handleStats},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" /v1"+rt.path, rt.h)
		mux.HandleFunc(rt.method+" /api"+rt.path, deprecatedAlias("/v1"+rt.path, rt.h))
	}
	// Batch and strategy discovery are v1-only: they postdate the /api
	// surface.
	mux.HandleFunc("POST /v1/suggest/batch", s.handleSuggestBatch)
	mux.HandleFunc("GET /v1/strategies", s.handleStrategies)
	// Snapshot distribution (v1-only): download the serving wire image,
	// or replace the serving snapshot with a posted image.
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshotPost)
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.mountDebug(mux)
	return s.withObs(mux)
}

// legacySunset is the announced removal date of the /api aliases,
// served verbatim as the Sunset header (RFC 8594) on every legacy
// response so clients can alert on it mechanically.
const legacySunset = "Mon, 01 Feb 2027 00:00:00 GMT"

// deprecatedAlias wraps a handler for the legacy /api mount: identical
// behavior, plus the standard deprecation headers pointing clients at
// the /v1 successor and the Sunset date after which the alias may be
// removed.
func deprecatedAlias(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", legacySunset)
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// --- Error envelope --------------------------------------------------

// apiError is the uniform error payload: a stable machine-readable
// code, a human-readable message, and optional structured details
// (e.g. the partial stage timings of a timed-out request).
type apiError struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
	// retryAfter, when positive, becomes the Retry-After response header
	// (shed and degraded responses tell clients when to come back).
	retryAfter time.Duration
}

// errorEnvelope is the wire shape of every non-2xx response:
// {"error": {"code", "message", "details"}}.
type errorEnvelope struct {
	Error *apiError `json:"error"`
}

// Stable error codes of the /v1 surface (documented in README).
const (
	codeBadJSON          = "bad_json"          // 400: body is not valid JSON
	codeMissingQuery     = "missing_query"     // 400: no input query
	codeMissingUser      = "missing_user"      // 400: endpoint needs a user
	codeMissingField     = "missing_field"     // 400: other required field absent
	codeBadK             = "bad_k"             // 400: k not a positive integer
	codeBadTimestamp     = "bad_timestamp"     // 400: at/context time not RFC3339
	codeBadMode          = "bad_mode"          // 400: unknown refresh mode
	codeBadRating        = "bad_rating"        // 400: rating off the 6-point scale
	codeBadBatch         = "bad_batch"         // 400: batch payload empty/malformed
	codeBadDebug         = "bad_debug"         // 400: unknown debug mode (only "trace")
	codeUnknownStrategy  = "unknown_strategy"  // 400: strategy not in the registry
	codeBatchTooLarge    = "batch_too_large"   // 413: batch exceeds MaxBatchSize
	codeNotFound         = "not_found"         // 404: no recorded history
	codeConflict         = "conflict"          // 409: engine cannot satisfy the mutation
	codeDeadlineExceeded = "deadline_exceeded" // 504: per-request deadline overrun
	codeInternal         = "internal"          // 500: unexpected pipeline failure

	// Admission-control codes (see internal/admission and admission.go).
	codePayloadTooLarge = "payload_too_large"    // 413: body exceeds the -max-body-bytes cap
	codeRateLimited     = "rate_limited"         // 429: per-user/per-IP token bucket empty
	codeOverloaded      = "overloaded"           // 429: concurrency gate shed the request
	codeDegraded        = "degraded_unavailable" // 503: breaker open, no cached list to serve
)

func newAPIError(code, message string) *apiError {
	return &apiError{Code: code, Message: message}
}

// writeAPIError writes the envelope, stamping the request ID into
// details so clients and the request log cross-reference on one key.
func writeAPIError(w http.ResponseWriter, r *http.Request, status int, e *apiError) {
	if id := obs.RequestIDFrom(r.Context()); id != "" {
		if e.Details == nil {
			e.Details = map[string]any{}
		}
		e.Details["requestId"] = id
	}
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", retryAfterValue(e.retryAfter))
	}
	writeJSON(w, status, errorEnvelope{Error: e})
}

// statusOf maps an error code to its HTTP status.
func statusOf(code string) int {
	switch code {
	case codeNotFound:
		return http.StatusNotFound
	case codeConflict:
		return http.StatusConflict
	case codeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case codeInternal:
		return http.StatusInternalServerError
	case codeBatchTooLarge, codePayloadTooLarge:
		return http.StatusRequestEntityTooLarge
	case codeRateLimited, codeOverloaded:
		return http.StatusTooManyRequests
	case codeDegraded:
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// decodeBody decodes an optional JSON request body into v. An empty
// body is valid and leaves v at its zero value, so handlers whose
// request fields all have documented defaults (e.g. /v1/refresh's
// mode) accept a bare POST.
//
// Two rejections harden the intake: a body over the configured cap
// (http.MaxBytesReader, installed by the middleware) is a 413, and a
// body with trailing garbage after the JSON value ({"k":5}garbage) is
// a 400 — json.Decoder reads a stream, so without the second Decode
// check it would silently accept anything appended to a valid value.
func (s *Server) decodeBody(r *http.Request, v any) *apiError {
	dec := json.NewDecoder(r.Body)
	err := dec.Decode(v)
	if errors.Is(err, io.EOF) {
		return nil // empty body: documented defaults apply
	}
	if err == nil {
		if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
			return newAPIError(codeBadJSON, "bad JSON: trailing data after body")
		}
		return nil
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		s.stats.bodyTooLarge.Add(1)
		return newAPIError(codePayloadTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
	}
	return newAPIError(codeBadJSON, "bad JSON: "+err.Error())
}

// --- Refresh / learn -------------------------------------------------

// RefreshRequest is the POST /v1/refresh body: ingest all recorded
// traffic into the engine and rebuild per mode ("graphs", "foldin" or
// "retrain"). An empty body (or empty mode) means "graphs". Build
// selects the representation build strategy — "full" (recount the
// whole log) or "delta" (incremental build over the fresh entries,
// bit-identical to full); empty uses the engine's configured default.
type RefreshRequest struct {
	Mode  string `json:"mode"`
	Build string `json:"build"`
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	// Rebuilds are expensive and serialized anyway (swapMu); the gate
	// turns a refresh pile-up into fast 429s instead of a lock convoy.
	if ctrl := s.admission.Load(); ctrl != nil {
		if aerr := s.acquireGate(r.Context(), ctrl.Refresh); aerr != nil {
			writeAPIError(w, r, statusOf(aerr.Code), aerr)
			return
		}
		defer ctrl.Refresh.Release()
	}
	var req RefreshRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		writeAPIError(w, r, statusOf(aerr.Code), aerr)
		return
	}
	var mode core.RefreshMode
	switch req.Mode {
	case "", "graphs":
		mode = core.RebuildGraphs
	case "foldin":
		mode = core.FoldInUsers
	case "retrain":
		mode = core.RetrainProfiles
	default:
		writeAPIError(w, r, http.StatusBadRequest, newAPIError(codeBadMode, "mode must be graphs, foldin or retrain"))
		return
	}

	// One rebuild at a time; suggestions never wait here — they read
	// the old engine until the swap below.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.engine.Load()

	strategy := cur.Strategy()
	switch req.Build {
	case "":
	case "full":
		strategy = core.FullRebuild
	case "delta":
		strategy = core.DeltaRebuild
	default:
		writeAPIError(w, r, http.StatusBadRequest, newAPIError(codeBadMode, "build must be full or delta"))
		return
	}

	// Validate BEFORE ingesting: a mode the engine cannot satisfy must
	// not consume the recorded entries or touch any engine state.
	if err := cur.CanRefresh(mode); err != nil {
		s.stats.refreshErrors.Add(1)
		writeAPIError(w, r, http.StatusConflict, newAPIError(codeConflict, err.Error()))
		return
	}

	// Snapshot the fresh entries under the record lock. Entries that
	// arrive while the rebuild runs stay pending for the next refresh.
	s.mu.Lock()
	prevIngested := s.lastIngested
	fresh := append([]querylog.Entry(nil), s.recorded.Entries[s.lastIngested:]...)
	s.lastIngested = s.recorded.Len()
	s.mu.Unlock()

	start := time.Now()
	next, err := cur.RebuildWith(fresh, mode, strategy)
	if err != nil {
		// Roll the ingest cursor back: the entries were never applied.
		s.mu.Lock()
		s.lastIngested = prevIngested
		s.mu.Unlock()
		s.stats.refreshErrors.Add(1)
		writeAPIError(w, r, http.StatusConflict, newAPIError(codeConflict, err.Error()))
		return
	}
	s.engine.Store(next)
	d := time.Since(start)
	build := next.LastBuild()
	s.stats.observeRefresh(d)
	s.tel.refreshDuration.Observe(d.Seconds())
	s.tel.observeSnapshotBuild(build)
	s.stats.swaps.Add(1)
	s.Logger().LogAttrs(r.Context(), slog.LevelInfo, "engine refreshed",
		slog.String("requestId", obs.RequestIDFrom(r.Context())),
		slog.String("mode", req.Mode),
		slog.String("build", build.Mode.String()),
		slog.Int("ingested", len(fresh)),
		slog.Int("deltaEntries", build.DeltaEntries),
		slog.Uint64("generation", next.Generation()),
		slog.Float64("durationMs", ms(d)))
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "refreshed",
		"ingested":     len(fresh),
		"generation":   next.Generation(),
		"build":        build.Mode.String(),
		"deltaEntries": build.DeltaEntries,
		"durationMs":   float64(d.Microseconds()) / 1000,
	})
}

// LearnRequest is the POST /v1/learn body: fold the middleware's
// recorded history for the user into the engine's profiles (online
// profiling of new users without retraining).
type LearnRequest struct {
	User string `json:"user"`
}

func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	ctrl := s.admission.Load()
	if ctrl != nil {
		if aerr := s.acquireGate(r.Context(), ctrl.Learn); aerr != nil {
			writeAPIError(w, r, statusOf(aerr.Code), aerr)
			return
		}
		defer ctrl.Learn.Release()
	}
	var req LearnRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		writeAPIError(w, r, statusOf(aerr.Code), aerr)
		return
	}
	if req.User == "" {
		writeAPIError(w, r, http.StatusBadRequest, newAPIError(codeMissingUser, "missing user"))
		return
	}
	if ctrl != nil {
		if ok, retry := ctrl.Users.Allow(req.User); !ok {
			s.stats.shedRateUser.Add(1)
			writeAPIError(w, r, http.StatusTooManyRequests, rateLimitedError(retry))
			return
		}
	}
	s.stats.learnRequests.Add(1)
	s.mu.Lock()
	entries := s.recorded.ByUser(req.User)
	s.mu.Unlock()
	if len(entries) == 0 {
		writeAPIError(w, r, http.StatusNotFound, newAPIError(codeNotFound, "no recorded history for user"))
		return
	}
	// Fold-in mutates the profile store, so it follows the same
	// clone→mutate→swap discipline as refresh: suggestions keep reading
	// the old engine until the swap.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.engine.Load()
	if cur.Profiles() == nil {
		writeAPIError(w, r, http.StatusConflict, newAPIError(codeConflict, "core: engine built without personalization"))
		return
	}
	next := cur.Clone()
	if err := next.LearnUser(req.User, entries); err != nil {
		writeAPIError(w, r, http.StatusConflict, newAPIError(codeConflict, err.Error()))
		return
	}
	s.engine.Store(next)
	s.stats.swaps.Add(1)
	s.Logger().LogAttrs(r.Context(), slog.LevelInfo, "user folded in",
		slog.String("requestId", obs.RequestIDFrom(r.Context())),
		slog.String("user", req.User),
		slog.Int("entries", len(entries)),
		slog.Uint64("generation", next.Generation()))
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "learned", "entries": len(entries), "generation": next.Generation(),
	})
}

// --- Suggest ---------------------------------------------------------

// SuggestRequest is the suggestion request on the wire, decoded
// uniformly from the GET query string and the POST JSON body (one
// decoder — the two transports cannot drift).
type SuggestRequest struct {
	User  string `json:"user"`
	Query string `json:"query"`
	K     int    `json:"k"`
	// Context lists the current session's previous queries, most
	// recent last, with RFC3339 timestamps.
	Context []ContextItem `json:"context,omitempty"`
	// At is the submission time (RFC3339; empty means now).
	At string `json:"at,omitempty"`
	// NoCache bypasses the suggestion cache for this request.
	NoCache bool `json:"noCache,omitempty"`
	// Strategy selects the diversification strategy ("hitting", "mmr",
	// "pfar", "relevance", …; GET /v1/strategies lists them). Empty means
	// the engine default. Unknown names are a 400 unknown_strategy.
	Strategy string `json:"strategy,omitempty"`
	// Debug, when set to "trace", returns the request's span tree
	// (pipeline stages with CG iterations, residual, hitting rounds …)
	// inline in the response.
	Debug string `json:"debug,omitempty"`
}

// ContextItem is one search-context query.
type ContextItem struct {
	Query string `json:"query"`
	At    string `json:"at"`
}

// SuggestResponse is the suggestion payload.
type SuggestResponse struct {
	Suggestions []string `json:"suggestions"`
	Diversified []string `json:"diversified"`
	CompactSize int      `json:"compactSize"`
	ElapsedMS   float64  `json:"elapsedMs"`
	// Generation identifies the engine snapshot that answered; it bumps
	// on every refresh/learn hot-swap.
	Generation uint64 `json:"generation"`
	// Cached reports the diversified list came from the suggestion
	// cache (personalization still ran fresh for this user).
	Cached bool `json:"cached"`
	// Strategy echoes the canonical name of the diversification strategy
	// that produced (or would have produced, on a cache hit) the list.
	Strategy string `json:"strategy,omitempty"`
	// Degraded reports the circuit breaker was open and this response
	// was served from the generation-keyed cache without running the
	// personalize/hitting pipeline.
	Degraded bool `json:"degraded,omitempty"`
	// RequestID echoes the request's ID (also on the X-Request-Id
	// response header) for cross-referencing logs and traces.
	RequestID string `json:"requestId,omitempty"`
	// Trace is the request's span tree, present only for debug=trace.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// decodeSuggestRequest is the single decoder both transports go
// through. GET reads user/q/k/at/nocache from the query string; POST
// reads the JSON body. K validation is shared: absent means the default
// (10), an explicitly supplied k must be a positive integer, and values
// above 100 are clamped by validateSuggestRequest.
func (s *Server) decodeSuggestRequest(r *http.Request) (SuggestRequest, *apiError) {
	var req SuggestRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req.User = q.Get("user")
		req.Query = q.Get("q")
		req.At = q.Get("at")
		req.NoCache = q.Get("nocache") == "1" || q.Get("nocache") == "true"
		req.Debug = q.Get("debug")
		req.Strategy = q.Get("strategy")
		if ks := q.Get("k"); ks != "" {
			// strconv.Atoi rejects trailing garbage ("5x") that Sscanf
			// silently accepted; non-positive k is an error, not a
			// panic source further down.
			v, err := strconv.Atoi(ks)
			if err != nil || v < 1 {
				return req, newAPIError(codeBadK, "k must be a positive integer")
			}
			req.K = v
		}
		return req, nil
	}
	if aerr := s.decodeBody(r, &req); aerr != nil {
		return req, aerr
	}
	if req.K < 0 {
		return req, newAPIError(codeBadK, "k must be a positive integer")
	}
	return req, nil
}

// maxK caps the suggestion count: the diversification pool scales with
// k, so an unbounded k is a self-inflicted denial of service.
const maxK = 100

// validateSuggestRequest turns the wire request into a core request:
// required fields, k defaulting/clamping, timestamp parsing. This is
// the ONE place suggestion validation happens — GET, POST and batch all
// flow through it.
func validateSuggestRequest(req SuggestRequest) (core.SuggestRequest, *apiError) {
	var out core.SuggestRequest
	if req.Query == "" {
		return out, newAPIError(codeMissingQuery, "missing query")
	}
	if req.Debug != "" && req.Debug != "trace" {
		return out, newAPIError(codeBadDebug, `debug must be "trace"`)
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k > maxK {
		k = maxK
	}
	at := time.Now()
	if req.At != "" {
		t, err := time.Parse(time.RFC3339, req.At)
		if err != nil {
			return out, newAPIError(codeBadTimestamp, "bad at timestamp")
		}
		at = t
	}
	var sctx []querylog.Entry
	for _, c := range req.Context {
		t, err := time.Parse(time.RFC3339, c.At)
		if err != nil {
			return out, newAPIError(codeBadTimestamp, "bad context timestamp")
		}
		sctx = append(sctx, querylog.Entry{UserID: req.User, Query: c.Query, Time: t})
	}
	return core.SuggestRequest{
		User:     req.User,
		Query:    req.Query,
		Context:  sctx,
		At:       at,
		K:        k,
		NoCache:  req.NoCache,
		Strategy: req.Strategy,
	}, nil
}

func (s *Server) handleSuggestGet(w http.ResponseWriter, r *http.Request) {
	// Gate BEFORE decoding: during a flood the shed path must not pay
	// for parsing work it is about to throw away.
	gate, ok := s.admitSuggest(r.Context(), w)
	if !ok {
		return
	}
	defer gate.Release()
	req, aerr := s.decodeSuggestRequest(r)
	if aerr != nil {
		s.stats.suggestRequests.Add(1)
		s.stats.suggestErrors.Add(1)
		writeAPIError(w, r, statusOf(aerr.Code), aerr)
		return
	}
	s.serveSuggestion(w, r, req)
}

func (s *Server) handleSuggestPost(w http.ResponseWriter, r *http.Request) {
	gate, ok := s.admitSuggest(r.Context(), w)
	if !ok {
		return
	}
	defer gate.Release()
	req, aerr := s.decodeSuggestRequest(r)
	if aerr != nil {
		s.stats.suggestRequests.Add(1)
		s.stats.suggestErrors.Add(1)
		writeAPIError(w, r, statusOf(aerr.Code), aerr)
		return
	}
	s.serveSuggestion(w, r, req)
}

func (s *Server) serveSuggestion(w http.ResponseWriter, r *http.Request, req SuggestRequest) {
	resp, aerr := s.suggestOnce(r.Context(), req)
	if aerr != nil {
		writeAPIError(w, r, statusOf(aerr.Code), aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// pipelineFn is the engine stage of one suggestion: it produces the
// result (possibly degraded) for an admitted, validated request. The
// single-request path uses Server.suggestPipeline; the batch endpoint
// substitutes a group runner that answers items of one solve group from
// a shared multi-RHS DoBatch call (see batch.go).
type pipelineFn func(ctx context.Context, eng *core.Engine, creq core.SuggestRequest) (core.Result, bool, error, *apiError)

// suggestOnce runs one validated suggestion end to end through the
// standard pipeline. Shared by the single endpoint and ungrouped batch
// items.
func (s *Server) suggestOnce(rctx context.Context, req SuggestRequest) (*SuggestResponse, *apiError) {
	return s.suggestRun(rctx, req, nil)
}

// suggestRun runs one suggestion end to end: stats, trace, deadline,
// engine snapshot, the pipeline stage (runner; nil means
// s.suggestPipeline), recording. Everything around the engine call —
// validation accounting, per-user rate limiting, wide events, SLO
// recording, error envelopes — is identical for every caller, so batch
// items get exactly single-request semantics with only the engine stage
// swapped out.
func (s *Server) suggestRun(rctx context.Context, req SuggestRequest, runner pipelineFn) (*SuggestResponse, *apiError) {
	s.stats.suggestRequests.Add(1)
	reqID := obs.RequestIDFrom(rctx)
	creq, aerr := validateSuggestRequest(req)
	if aerr != nil {
		s.stats.suggestErrors.Add(1)
		s.flightEvent(reqID, "", core.SuggestRequest{}, core.Result{}, 0,
			slo.OutcomeBadRequest, statusOf(aerr.Code), false, false)
		return nil, aerr
	}
	// Per-user token bucket. Anonymous requests are exempt here — the
	// middleware's per-IP bucket already covers them, and an empty key
	// would pool every anonymous client into one bucket.
	if ctrl := s.admission.Load(); ctrl != nil && creq.User != "" {
		if ok, retry := ctrl.Users.Allow(creq.User); !ok {
			s.stats.shedRateUser.Add(1)
			s.flightEvent(reqID, "", creq, core.Result{}, 0,
				slo.OutcomeShedRate, http.StatusTooManyRequests, false, false)
			return nil, rateLimitedError(retry)
		}
	}

	// Request-scoped trace: every pipeline stage down to the CG solver
	// appends spans; the completed trace lands in the /debug/traces
	// ring, is logged when over the slow-query budget, and is returned
	// inline for debug=trace. Batch items trace individually. The trace
	// gets its own server-assigned ID (distinct from the possibly
	// client-supplied request ID) — the key exemplars and wide events
	// carry, resolvable via /debug/exemplars?trace=.
	tr := obs.NewTrace(reqID)
	tr.TraceID = newRequestID()
	ctx := obs.WithTrace(rctx, tr)

	// Request-scoped deadline: client disconnects cancel via the
	// request context, and the configured timeout bounds the pipeline.
	if d := s.RequestTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	start := time.Now()
	root := tr.StartSpan("suggest")
	root.SetAttr("query", creq.Query)
	root.SetAttr("user", creq.User)
	root.SetAttr("k", creq.K)
	// Lock-free engine access: a refresh swapping the pointer mid-call
	// does not affect this request, which finishes on its snapshot.
	eng := s.engine.Load()
	if runner == nil {
		runner = s.suggestPipeline
	}
	res, degraded, err, aerr := runner(ctx, eng, creq)
	elapsed := time.Since(start)
	root.SetAttr("generation", res.Generation)
	root.SetAttr("cacheHit", res.CacheHit)
	if degraded {
		root.SetAttr("degraded", true)
	}
	root.End()

	// Classify the disposition once for the flight recorder and the
	// latency/fidelity SLOs — every path out of this function leaves one
	// wide event behind.
	outcome, status := classifySuggest(ctx, degraded, err, aerr)
	brownoutServed := degraded && aerr == nil && err == nil && !res.CacheHit
	s.flightEvent(reqID, tr.TraceID, creq, res, elapsed, outcome, status, degraded, brownoutServed)
	s.recordSuggestSLO(res, elapsed, degraded)

	if aerr != nil {
		// Breaker open and nothing cached: shed with 503.
		s.finishTrace(tr, elapsed, res.Strategy, res.Generation)
		s.stats.suggestErrors.Add(1)
		return nil, aerr
	}
	s.observeStages(res, elapsed, reqID, tr.TraceID)
	snap := s.finishTrace(tr, elapsed, res.Strategy, res.Generation)
	if res.CacheHit {
		s.stats.suggestCacheHits.Add(1)
	}
	if err != nil {
		if errors.Is(err, core.ErrUnknownStrategy) {
			s.stats.suggestErrors.Add(1)
			e := newAPIError(codeUnknownStrategy, err.Error())
			e.Details = map[string]any{
				"strategy": req.Strategy,
				"known":    eng.StrategyNames(),
			}
			return nil, e
		}
		if ctx.Err() != nil {
			// Deadline overrun (or client gone): report how far the
			// pipeline got instead of running the solver to completion.
			s.stats.suggestTimeouts.Add(1)
			return nil, &apiError{
				Code:    codeDeadlineExceeded,
				Message: "deadline exceeded",
				Details: map[string]any{
					"compactSize":     res.CompactSize,
					"solveIterations": res.SolveIterations,
					"compactMs":       ms(res.CompactTime),
					"solveMs":         ms(res.SolveTime),
					"hittingMs":       ms(res.HittingTime),
					"elapsedMs":       ms(elapsed),
				},
			}
		}
		if errors.Is(err, core.ErrUnknownQuery) {
			s.stats.suggestUnknown.Add(1)
			resp := &SuggestResponse{
				Suggestions: []string{}, Diversified: []string{},
				Generation: res.Generation, Strategy: res.Strategy, RequestID: reqID,
			}
			if req.Debug == "trace" {
				resp.Trace = &snap
			}
			return resp, nil
		}
		s.stats.suggestErrors.Add(1)
		return nil, newAPIError(codeInternal, err.Error())
	}
	// The middleware records what the searcher asked — future profile
	// training data, as in the paper's four-month study.
	s.record(querylog.Entry{UserID: creq.User, Query: creq.Query, Time: creq.At})

	resp := &SuggestResponse{
		Suggestions: res.Suggestions,
		Diversified: res.Diversified,
		CompactSize: res.CompactSize,
		ElapsedMS:   ms(elapsed),
		Generation:  res.Generation,
		Cached:      res.CacheHit,
		Strategy:    res.Strategy,
		Degraded:    degraded,
		RequestID:   reqID,
	}
	if req.Debug == "trace" {
		resp.Trace = &snap
	}
	return resp, nil
}

// --- Observability ---------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n, f := s.recorded.Len(), len(s.feedback)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "recordedEntries": n, "feedback": f,
		"swaps":      s.stats.swaps.Load(),
		"generation": s.engine.Load().Generation(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsPayload())
}

// statsPayload combines the request counters with the per-stage latency
// percentiles, the pipeline-depth histograms (CG iterations/residual,
// hitting rounds), process runtime stats, the serving engine's
// generation and, when caching is enabled, the cache's
// hit/miss/coalesce/eviction counters. Backs /v1/stats and expvar.
func (s *Server) statsPayload() map[string]any {
	m := s.stats.snapshot()
	stages := make(map[string]any, len(s.tel.stageNames))
	for _, name := range s.tel.stageNames {
		stages[name] = stageStatsPayload(s.tel.stages[name])
	}
	m["stages"] = stages
	m["solver"] = map[string]any{
		"cgIterations":     depthStatsPayload(s.tel.cgIterations),
		"cgResidual":       depthStatsPayload(s.tel.cgResidual),
		"hittingRounds":    depthStatsPayload(s.tel.hittingRounds),
		"hittingWalkSteps": depthStatsPayload(s.tel.hittingWalkSteps),
		"batchSize":        depthStatsPayload(s.tel.solveBatchSize),
	}
	m["http"] = stageStatsPayload(s.tel.httpDuration)
	m["runtime"] = s.runtimePayload()
	m["slo"] = s.sloStatsPayload()
	// Extend the counter-only admission section from snapshot() with the
	// live controller state: breaker, gate occupancy, limiter key counts
	// and the queue-depth distribution.
	adm := m["admission"].(map[string]any)
	adm["queueDepth"] = depthStatsPayload(s.tel.queueDepth)
	ctrl := s.admission.Load()
	adm["enabled"] = ctrl != nil
	if ctrl != nil {
		adm["advisory"] = ctrl.Advisory().String()
		adm["breaker"] = map[string]any{
			"state": ctrl.Breaker.State().String(),
			"opens": ctrl.Breaker.Opens(),
		}
		adm["suggestGate"] = map[string]any{
			"limit":      ctrl.Suggest.Limit(),
			"inFlight":   ctrl.Suggest.InFlight(),
			"waiting":    ctrl.Suggest.Waiting(),
			"saturation": ctrl.Suggest.Saturation(),
		}
		adm["rateKeys"] = map[string]any{
			"users": ctrl.Users.Keys(),
			"ips":   ctrl.IPs.Keys(),
		}
	}
	eng := s.engine.Load()
	byStrategy := make(map[string]any, len(s.tel.strategyNames))
	for _, name := range s.tel.strategyNames {
		byStrategy[name] = map[string]any{
			"requests": s.tel.strategyRequests[name].Load(),
			"select":   stageStatsPayload(s.tel.selectDuration[name]),
		}
	}
	m["strategies"] = map[string]any{
		"default":    eng.DiversifyDefault(),
		"brownout":   s.BrownoutStrategy(),
		"byStrategy": byStrategy,
	}
	m["snapshot"] = s.snapshotStatsPayload()
	build := eng.LastBuild()
	m["engine"] = map[string]any{
		"generation":     eng.Generation(),
		"pendingEntries": eng.PendingEntries(),
		"dirtyClamps":    eng.DirtyClamps(),
		"lastBuild": map[string]any{
			"mode":          build.Mode.String(),
			"deltaEntries":  build.DeltaEntries,
			"affectedUsers": build.AffectedUsers,
			"durationMs":    float64(build.Duration.Microseconds()) / 1000,
			"entries":       build.LogEntries,
			"sessions":      build.NumSessions,
			"queries":       build.NumQueries,
		},
	}
	if c := eng.Cache(); c != nil {
		st := c.Stats()
		m["cache"] = map[string]any{
			"hits":        st.Hits,
			"misses":      st.Misses,
			"coalesced":   st.Coalesced,
			"evictions":   st.Evictions,
			"expirations": st.Expirations,
			"entries":     st.Entries,
			"hitRate":     st.HitRate(),
		}
	}
	return m
}

// observeStages feeds the core.Result timing breakdown into the
// per-stage latency histograms (partial results from cancelled requests
// count too — their completed stages are real work; cache hits report
// zero for the stages they skipped and are not observed there). The
// request/trace IDs ride along as bucket exemplars when exemplar
// retention is enabled, so a high bucket on /metrics names a real
// request.
func (s *Server) observeStages(res core.Result, total time.Duration, reqID, traceID string) {
	s.tel.observeStage("total", total, reqID, traceID)
	if res.CompactTime > 0 {
		s.tel.observeStage("compact", res.CompactTime, reqID, traceID)
	}
	if res.SolveTime > 0 {
		s.tel.observeStage("solve", res.SolveTime, reqID, traceID)
	}
	if res.HittingTime > 0 {
		s.tel.observeStage("hitting", res.HittingTime, reqID, traceID)
	}
	if res.PersonalizeTime > 0 {
		s.tel.observeStage("personalize", res.PersonalizeTime, reqID, traceID)
	}
	// HittingTime is the Select-stage wall time whatever the strategy
	// (the field name predates the pluggable boundary); cache hits report
	// zero and are counted without a latency observation.
	s.tel.observeStrategy(res.Strategy, res.HittingTime, reqID, traceID)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// --- Feedback / log --------------------------------------------------

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var fb Feedback
	if aerr := s.decodeBody(r, &fb); aerr != nil {
		writeAPIError(w, r, statusOf(aerr.Code), aerr)
		return
	}
	if fb.User == "" || fb.Suggestion == "" {
		writeAPIError(w, r, http.StatusBadRequest, newAPIError(codeMissingField, "missing user or suggestion"))
		return
	}
	if !validRating(fb.Rating) {
		writeAPIError(w, r, http.StatusBadRequest, newAPIError(codeBadRating, "rating must be one of 0, 0.2, 0.4, 0.6, 0.8, 1"))
		return
	}
	s.stats.feedbackRequests.Add(1)
	fb.At = time.Now()
	s.mu.Lock()
	s.feedback = append(s.feedback, fb)
	if s.sink != nil {
		fmt.Fprintf(s.sink, "feedback\t%s\t%s\t%s\t%.1f\n",
			escapeTSV(fb.User), escapeTSV(fb.Query), escapeTSV(fb.Suggestion), fb.Rating)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

// LogRequest is the POST /v1/log body: one raw search event.
type LogRequest struct {
	User       string `json:"user"`
	Query      string `json:"query"`
	ClickedURL string `json:"clickedUrl,omitempty"`
	At         string `json:"at,omitempty"`
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	var req LogRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		writeAPIError(w, r, statusOf(aerr.Code), aerr)
		return
	}
	if req.User == "" || req.Query == "" {
		writeAPIError(w, r, http.StatusBadRequest, newAPIError(codeMissingField, "missing user or query"))
		return
	}
	at := time.Now()
	if req.At != "" {
		t, err := time.Parse(time.RFC3339, req.At)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, newAPIError(codeBadTimestamp, "bad at timestamp"))
			return
		}
		at = t
	}
	s.stats.logRequests.Add(1)
	s.record(querylog.Entry{UserID: req.User, Query: req.Query, ClickedURL: req.ClickedURL, Time: at})
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (s *Server) record(e querylog.Entry) {
	s.mu.Lock()
	s.recorded.Append(e)
	if s.sink != nil {
		fmt.Fprintf(s.sink, "entry\t%s\t%s\t%s\t%s\n",
			escapeTSV(e.UserID), escapeTSV(e.Query), escapeTSV(e.ClickedURL),
			e.Time.UTC().Format(time.RFC3339))
	}
	s.mu.Unlock()
}

// escapeTSV backslash-escapes the characters that would corrupt the
// one-event-per-line TSV sink: user-controlled queries and suggestions
// may legally contain tabs and newlines.
func escapeTSV(s string) string {
	if !strings.ContainsAny(s, "\t\n\r\\") {
		return s
	}
	return tsvEscaper.Replace(s)
}

var tsvEscaper = strings.NewReplacer("\\", `\\`, "\t", `\t`, "\n", `\n`, "\r", `\r`)

// Recorded returns a copy of the query log observed so far.
func (s *Server) Recorded() *querylog.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &querylog.Log{Entries: append([]querylog.Entry(nil), s.recorded.Entries...)}
	return out
}

// FeedbackLog returns a copy of the collected ratings.
func (s *Server) FeedbackLog() []Feedback {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Feedback(nil), s.feedback...)
}

// MeanHPR returns the average rating collected so far (NaN-free: 0
// when empty) — the number the paper's Fig. 6 averages over experts.
func (s *Server) MeanHPR() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.feedback) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range s.feedback {
		sum += f.Rating
	}
	return sum / float64(len(s.feedback))
}

func validRating(r float64) bool {
	for _, v := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		if r > v-1e-9 && r < v+1e-9 {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
