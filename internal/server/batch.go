package server

// POST /v1/suggest/batch — the batched suggestion endpoint.
//
// The endpoint exists to exploit solve sharing. Items whose requests
// resolve to the same seed set (same normalized query, same context
// query names — core.SolveSignature) build the same compact
// representation and the same Eq. 15 system matrix, so Engine.DoBatch
// answers all of them with ONE blocked multi-RHS CG solve instead of
// one solve each. The handler therefore groups the payload by solve
// signature up front and budgets admission per GROUP: one suggest-gate
// slot covers a whole group, acquired before any solve work starts, so
// duplicate and same-signature items cost one concurrency unit instead
// of racing each other for slots they would spend computing the same
// thing. Within a group, items still run through suggestRun
// individually — per-user rate limits, wide events, SLO recording and
// error envelopes are exactly the single-request semantics; only the
// engine stage is swapped for a lane of the shared DoBatch call.
//
// SetBatchSolve(false) restores the legacy model (independent items,
// one gate slot each, solve sharing only via the suggestion cache) as
// an operational escape hatch.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
)

// MaxBatchSize bounds one /v1/suggest/batch payload.
const MaxBatchSize = 256

// BatchSuggestRequest is the POST /v1/suggest/batch body.
type BatchSuggestRequest struct {
	Requests []SuggestRequest `json:"requests"`
}

// BatchItemResult is one element of the batch response, positionally
// matching the request payload: either a response or an error envelope
// entry, never both.
type BatchItemResult struct {
	Status   int              `json:"status"`
	Response *SuggestResponse `json:"response,omitempty"`
	Error    *apiError        `json:"error,omitempty"`
}

// BatchSuggestResponse is the batch payload.
type BatchSuggestResponse struct {
	Results   []BatchItemResult `json:"results"`
	ElapsedMS float64           `json:"elapsedMs"`
}

// SetBatchSolve selects the /v1/suggest/batch execution model: grouped
// multi-RHS solving via Engine.DoBatch (true, the default) or the
// legacy independent-item path (false). Safe to call while serving;
// in-flight payloads finish on the model they started with.
func (s *Server) SetBatchSolve(on bool) { s.batchSolve.Store(on) }

// BatchSolve reports the active batch execution model.
func (s *Server) BatchSolve() bool { return s.batchSolve.Load() }

// handleSuggestBatch answers many suggestion requests in one round
// trip. Same-signature items share one blocked multi-RHS solve and one
// gate slot (see the file comment); results flow through the same
// suggestion cache as single requests, so popular items are also shared
// with concurrent single-request traffic.
func (s *Server) handleSuggestBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSuggestRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		writeAPIError(w, r, statusOf(aerr.Code), aerr)
		return
	}
	if len(req.Requests) == 0 {
		writeAPIError(w, r, http.StatusBadRequest, newAPIError(codeBadBatch, "requests must be a non-empty array"))
		return
	}
	if len(req.Requests) > MaxBatchSize {
		writeAPIError(w, r, http.StatusRequestEntityTooLarge, newAPIError(codeBatchTooLarge,
			fmt.Sprintf("batch of %d exceeds the limit of %d", len(req.Requests), MaxBatchSize)))
		return
	}
	s.stats.batchRequests.Add(1)

	start := time.Now()
	var results []BatchItemResult
	if s.batchSolve.Load() {
		results = s.serveBatchGrouped(r.Context(), req.Requests)
	} else {
		results = s.serveBatchPerItem(r.Context(), req.Requests)
	}
	writeJSON(w, http.StatusOK, BatchSuggestResponse{
		Results:   results,
		ElapsedMS: ms(time.Since(start)),
	})
}

// batchGroup is the shared state of one solve group: the items of one
// payload whose requests carry the same solve signature. The first
// group member to reach the engine stage runs Engine.DoBatch for ALL
// lanes (sync.Once); every member then answers from its own lane. A
// group whose members are all rate-limited or degraded never solves.
type batchGroup struct {
	creqs []core.SuggestRequest
	items []int       // original payload indices, parallel to creqs
	pos   map[int]int // payload index → lane

	once    sync.Once
	results []core.Result
	errs    []error
}

// run executes the group's shared engine call exactly once.
func (g *batchGroup) run(ctx context.Context, s *Server, eng *core.Engine) {
	g.once.Do(func() {
		g.results, g.errs = eng.DoBatch(ctx, g.creqs)
		s.recordBatchSolve(g.results)
	})
}

// batchRunner adapts payload item i of group g to the pipelineFn seam
// of suggestRun: breaker routing per item, then the item's lane of the
// group's shared DoBatch result.
func (s *Server) batchRunner(g *batchGroup, i int) pipelineFn {
	return func(ctx context.Context, eng *core.Engine, creq core.SuggestRequest) (core.Result, bool, error, *apiError) {
		breaker := s.suggestBreaker()
		if !breaker.Allow() {
			return s.suggestDegraded(ctx, eng, creq, breaker)
		}
		g.run(ctx, s, eng)
		lane := g.pos[i]
		res, err := g.results[lane], g.errs[lane]
		s.recordBreaker(ctx, breaker, err, res.CacheHit)
		return res, false, err, nil
	}
}

// serveBatchGrouped is the solve-grouping execution model.
func (s *Server) serveBatchGrouped(rctx context.Context, reqs []SuggestRequest) []BatchItemResult {
	results := make([]BatchItemResult, len(reqs))

	// Group the payload by solve signature BEFORE any gate is touched.
	// Validation here only decides grouping; items that fail it run
	// ungrouped through suggestRun below, which re-validates with the
	// full accounting (counters, wide event) of the single path. The
	// grouping creq — not suggestRun's re-validated copy — is what the
	// shared solve computes, so all lanes anchor to one clock reading.
	groups := make(map[string]*batchGroup)
	itemGroup := make([]*batchGroup, len(reqs))
	for i := range reqs {
		creq, aerr := validateSuggestRequest(reqs[i])
		if aerr != nil {
			continue
		}
		sig := core.SolveSignature(creq)
		g := groups[sig]
		if g == nil {
			g = &batchGroup{pos: make(map[int]int)}
			groups[sig] = g
		}
		g.pos[i] = len(g.creqs)
		g.creqs = append(g.creqs, creq)
		g.items = append(g.items, i)
		itemGroup[i] = g
	}

	ctrl := s.admission.Load()
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *batchGroup) {
			defer wg.Done()
			// ONE gate slot per solve group: a 64-item batch that
			// collapses to a handful of solves claims a handful of
			// slots, and duplicate items can no longer starve
			// interactive traffic by each holding one. A shed fails the
			// whole group — its items would all have waited on the same
			// denied solve.
			if ctrl != nil && ctrl.Suggest != nil {
				if aerr := s.acquireGate(rctx, ctrl.Suggest); aerr != nil {
					for _, i := range g.items {
						s.stats.suggestRequests.Add(1)
						results[i] = BatchItemResult{Status: statusOf(aerr.Code), Error: aerr}
					}
					return
				}
				defer ctrl.Suggest.Release()
			}
			var iwg sync.WaitGroup
			for _, i := range g.items {
				iwg.Add(1)
				go func(i int) {
					defer iwg.Done()
					resp, aerr := s.suggestRun(rctx, reqs[i], s.batchRunner(g, i))
					if aerr != nil {
						results[i] = BatchItemResult{Status: statusOf(aerr.Code), Error: aerr}
						return
					}
					results[i] = BatchItemResult{Status: http.StatusOK, Response: resp}
				}(i)
			}
			iwg.Wait()
		}(g)
	}
	// Items that failed grouping-time validation: no group, no gate —
	// suggestRun rejects them at validation before any engine work.
	for i := range reqs {
		if itemGroup[i] != nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, aerr := s.suggestOnce(rctx, reqs[i])
			if aerr != nil {
				results[i] = BatchItemResult{Status: statusOf(aerr.Code), Error: aerr}
				return
			}
			results[i] = BatchItemResult{Status: http.StatusOK, Response: resp}
		}(i)
	}
	wg.Wait()
	return results
}

// serveBatchPerItem is the legacy execution model: items run
// independently and compete for the same suggest gate as single
// requests, one slot each; solve sharing happens only through the
// suggestion cache.
func (s *Server) serveBatchPerItem(ctx context.Context, reqs []SuggestRequest) []BatchItemResult {
	results := make([]BatchItemResult, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if ctrl := s.admission.Load(); ctrl != nil {
				if aerr := s.acquireGate(ctx, ctrl.Suggest); aerr != nil {
					s.stats.suggestRequests.Add(1)
					results[i] = BatchItemResult{Status: statusOf(aerr.Code), Error: aerr}
					return
				}
				defer ctrl.Suggest.Release()
			}
			resp, aerr := s.suggestOnce(ctx, reqs[i])
			if aerr != nil {
				results[i] = BatchItemResult{Status: statusOf(aerr.Code), Error: aerr}
				return
			}
			results[i] = BatchItemResult{Status: http.StatusOK, Response: resp}
		}(i)
	}
	wg.Wait()
	return results
}
