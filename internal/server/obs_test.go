package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/synth"
)

// TestTracePropagation is the acceptance check of the tracing layer: a
// debug=trace request against a personalized engine must return the
// span tree covering every pipeline stage, with the solver attributes
// recorded from deep inside the CG solve.
func TestTracePropagation(t *testing.T) {
	_, ts, w := personalizedServer(t)
	q := pickKnownQuery(t, w)

	var out struct {
		RequestID string             `json:"requestId"`
		Trace     *obs.TraceSnapshot `json:"trace"`
	}
	url := fmt.Sprintf("%s/v1/suggest?q=%s&user=u0001&debug=trace", ts.URL, q)
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("suggest: status %d", code)
	}
	if out.RequestID == "" {
		t.Error("response has no requestId")
	}
	if out.Trace == nil {
		t.Fatal("debug=trace returned no trace")
	}
	if out.Trace.ID != out.RequestID {
		t.Errorf("trace id %q != response requestId %q", out.Trace.ID, out.RequestID)
	}
	spans := map[string]obs.SpanSnapshot{}
	for _, sp := range out.Trace.Spans {
		spans[sp.Name] = sp
	}
	for _, stage := range []string{"suggest", "compact", "solve", "hitting", "personalize"} {
		if _, ok := spans[stage]; !ok {
			t.Errorf("trace missing %q span (got %v)", stage, spanNames(out.Trace))
		}
	}
	if it, ok := spans["solve"].Attrs["cgIterations"]; !ok || asFloat(it) < 1 {
		t.Errorf("solve span cgIterations = %v, want ≥ 1", it)
	}
	if res, ok := spans["solve"].Attrs["residual"]; !ok || asFloat(res) < 0 {
		t.Errorf("solve span residual = %v", res)
	}
	if r, ok := spans["hitting"].Attrs["rounds"]; !ok || asFloat(r) < 1 {
		t.Errorf("hitting span rounds = %v, want ≥ 1", r)
	}

	// Without debug=trace the span tree stays out of the payload.
	var plain map[string]any
	getJSON(t, fmt.Sprintf("%s/v1/suggest?q=%s", ts.URL, q), &plain)
	if _, ok := plain["trace"]; ok {
		t.Error("trace present without debug=trace")
	}
	// Unknown debug modes are rejected, not ignored.
	var envelope map[string]map[string]any
	if code := getJSON(t, fmt.Sprintf("%s/v1/suggest?q=%s&debug=verbose", ts.URL, q), &envelope); code != 400 {
		t.Errorf("debug=verbose: status %d, want 400", code)
	} else if envelope["error"]["code"] != "bad_debug" {
		t.Errorf("debug=verbose error code = %v", envelope["error"]["code"])
	}
}

func decodeInto(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func spanNames(tr *obs.TraceSnapshot) []string {
	names := make([]string, len(tr.Spans))
	for i, sp := range tr.Spans {
		names[i] = sp.Name
	}
	return names
}

func asFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	default:
		return -1
	}
}

// TestMetricsEndpoint asserts /metrics serves the per-stage latency
// family for all five stages plus the pipeline-depth histograms fed
// from inside the solver and the greedy loop.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+q, nil); code != 200 {
		t.Fatalf("suggest: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, stage := range []string{"compact", "solve", "hitting", "personalize", "total"} {
		if want := fmt.Sprintf(`pqsda_stage_duration_seconds_bucket{stage=%q,le="+Inf"}`, stage); !strings.Contains(body, want) {
			t.Errorf("/metrics missing stage series %q", want)
		}
	}
	// The diversification-only fixture ran compact/solve/hitting/total;
	// their counts must be non-zero, and the depth histograms must have
	// received the in-pipeline observations through the context sink.
	for _, family := range []string{
		"pqsda_stage_duration_seconds", "pqsda_http_request_duration_seconds",
		obs.MetricCGIterations, obs.MetricCGResidual,
		obs.MetricHittingRounds, obs.MetricHittingWalkSteps,
	} {
		if !strings.Contains(body, family+"_count") {
			t.Errorf("/metrics missing family %q", family)
		}
	}
	for _, nonzero := range []string{
		obs.MetricCGIterations + "_count 1",
		obs.MetricHittingRounds + "_count 1",
		"pqsda_suggest_requests_total 1",
	} {
		if !strings.Contains(body, nonzero) {
			t.Errorf("/metrics: expected %q in output", nonzero)
		}
	}
	if !strings.Contains(body, "# TYPE pqsda_stage_duration_seconds histogram") {
		t.Error("/metrics missing TYPE header for the stage family")
	}
	if !strings.Contains(body, "pqsda_engine_generation 1") {
		t.Error("/metrics missing engine generation gauge")
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)

	// Server-assigned: header and body must agree.
	resp, err := http.Get(ts.URL + "/v1/suggest?q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	var out SuggestResponse
	decodeInto(t, resp, &out)
	hdr := resp.Header.Get("X-Request-Id")
	if hdr == "" {
		t.Fatal("no X-Request-Id on response")
	}
	if out.RequestID != hdr {
		t.Errorf("body requestId %q != header %q", out.RequestID, hdr)
	}

	// Client-supplied: accepted and echoed verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/suggest?q="+q, nil)
	req.Header.Set("X-Request-Id", "caller-7")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp2, &out)
	if resp2.Header.Get("X-Request-Id") != "caller-7" || out.RequestID != "caller-7" {
		t.Errorf("client-supplied id not echoed: header %q, body %q",
			resp2.Header.Get("X-Request-Id"), out.RequestID)
	}

	// Error envelopes carry the id in details.
	req3, _ := http.NewRequest("GET", ts.URL+"/v1/suggest?q="+q+"&k=zero", nil)
	req3.Header.Set("X-Request-Id", "caller-8")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	var envelope errorEnvelope
	decodeInto(t, resp3, &envelope)
	if resp3.StatusCode != 400 {
		t.Fatalf("bad k: status %d", resp3.StatusCode)
	}
	if got := envelope.Error.Details["requestId"]; got != "caller-8" {
		t.Errorf("error envelope requestId = %v, want caller-8", got)
	}
}

func TestDebugTracesRing(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	for i := 0; i < 3; i++ {
		if code := getJSON(t, ts.URL+"/v1/suggest?q="+q, nil); code != 200 {
			t.Fatalf("suggest %d: status %d", i, code)
		}
	}
	var out struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &out); code != 200 {
		t.Fatalf("/debug/traces: status %d", code)
	}
	if len(out.Traces) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(out.Traces))
	}
	for i, tr := range out.Traces {
		if tr.ID == "" || len(tr.Spans) == 0 {
			t.Errorf("trace %d: id=%q spans=%d", i, tr.ID, len(tr.Spans))
		}
	}
}

func TestStatsPercentilesAndReset(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	for i := 0; i < 4; i++ {
		getJSON(t, ts.URL+"/v1/suggest?q="+q, nil)
	}

	var stats map[string]any
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("/v1/stats: status %d", code)
	}
	total := stats["stages"].(map[string]any)["total"].(map[string]any)
	if total["count"].(float64) != 4 {
		t.Fatalf("stages.total.count = %v, want 4", total["count"])
	}
	for _, key := range []string{"p50Ms", "p90Ms", "p99Ms", "meanMs", "maxMs"} {
		v, ok := total[key].(float64)
		if !ok || v <= 0 {
			t.Errorf("stages.total.%s = %v, want > 0", key, total[key])
		}
	}
	solver := stats["solver"].(map[string]any)
	cg := solver["cgIterations"].(map[string]any)
	if cg["count"].(float64) < 1 || cg["p50"].(float64) < 1 {
		t.Errorf("solver.cgIterations = %v", cg)
	}
	rt := stats["runtime"].(map[string]any)
	if rt["goroutines"].(float64) < 1 || rt["uptimeSeconds"].(float64) < 0 {
		t.Errorf("runtime section = %v", rt)
	}
	if _, ok := stats["http"].(map[string]any); !ok {
		t.Error("stats missing http section")
	}

	// Reset re-baselines histograms but keeps the counters counting.
	resp, err := http.Post(ts.URL+"/debug/stats/reset", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("reset: status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	total = stats["stages"].(map[string]any)["total"].(map[string]any)
	if total["count"].(float64) != 0 || total["maxMs"].(float64) != 0 {
		t.Errorf("after reset: total = %v, want zeroed histogram", total)
	}
	if got := stats["suggest"].(map[string]any)["requests"].(float64); got != 4 {
		t.Errorf("after reset: suggest.requests = %v, want 4 (counters survive)", got)
	}
}

// TestExpvarUniqueNames pins the satellite fix: every Server in the
// process publishes to /debug/vars — the first under the historical
// name, later ones under numbered names instead of being silently
// dropped.
func TestExpvarUniqueNames(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 83, NumFacets: 3, NumUsers: 6, SessionsPerUser: 10})
	mk := func() *Server {
		engine, err := core.NewEngine(w.Log, core.Config{
			Compact:             bipartite.CompactConfig{Budget: 30},
			SkipPersonalization: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return New(engine, nil)
	}
	a, b := mk(), mk()
	na, nb := a.ExpvarName(), b.ExpvarName()
	if na == nb {
		t.Fatalf("two servers share expvar name %q", na)
	}
	for _, name := range []string{na, nb} {
		if !strings.HasPrefix(name, "pqsda") {
			t.Errorf("expvar name %q does not start with pqsda", name)
		}
		if expvar.Get(name) == nil {
			t.Errorf("expvar %q not published", name)
		}
	}
	// Idempotent: Handler()/ExpvarName() never re-publish.
	if again := a.ExpvarName(); again != na {
		t.Errorf("ExpvarName changed across calls: %q → %q", na, again)
	}
}

func TestPProfMounting(t *testing.T) {
	srv, ts, _, _ := testServer(t) // pprof off by default
	if code := getJSON(t, ts.URL+"/debug/pprof/", nil); code != 404 {
		t.Errorf("pprof without EnablePProf: status %d, want 404", code)
	}
	srv.EnablePProf()
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index: status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}
