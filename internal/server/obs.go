package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/slo"
)

// This file is the server half of the observability layer: the request
// middleware (request IDs, structured logs, metric-sink injection, the
// HTTP latency histogram), the /metrics, /debug/traces and
// /debug/stats/reset endpoints, optional net/http/pprof mounting, and
// the slow-query log.

// defaultTraceRingSize is how many completed suggestion traces
// /debug/traces retains.
const defaultTraceRingSize = 64

// SetLogger replaces the server's structured logger (default: discard).
// Every line carries the request ID of the request that produced it.
// Safe to call while serving.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = discardLogger()
	}
	s.logger.Store(l)
}

// Logger returns the current structured logger.
func (s *Server) Logger() *slog.Logger { return s.logger.Load() }

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.Level(127)}))
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// SetSlowQueryThreshold makes any suggestion slower than d log its full
// trace through the structured logger (and count in suggest.slow).
// Zero disables. Safe to call while serving.
func (s *Server) SetSlowQueryThreshold(d time.Duration) { s.slowQueryNs.Store(int64(d)) }

// SlowQueryThreshold returns the configured threshold.
func (s *Server) SlowQueryThreshold() time.Duration { return time.Duration(s.slowQueryNs.Load()) }

// EnablePProf mounts the net/http/pprof handlers under /debug/pprof on
// the next Handler() call. Off by default: profiling endpoints expose
// process internals and cost CPU while sampling, so production mounts
// opt in via the -pprof flag.
func (s *Server) EnablePProf() { s.pprofEnabled = true }

// Metrics returns the server's metric registry (the same one /metrics
// renders), so embedders can attach their own series.
func (s *Server) Metrics() *obs.Registry { return s.tel.registry }

// --- Request IDs -----------------------------------------------------

// requestIDSeq backs the fallback ID when crypto/rand fails (it
// practically cannot, but an ID must never be empty).
var requestIDSeq atomic.Int64

// newRequestID returns a 16-hex-char random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", requestIDSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// --- Middleware ------------------------------------------------------

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withObs wraps the whole mux: it accepts or assigns the X-Request-Id,
// echoes it on the response, injects the request ID and the metric sink
// into the request context (the sink is what lets the CG solver and the
// hitting-time loop record depth histograms from deep inside the
// pipeline), feeds the HTTP latency histogram, and writes one
// structured log line per request.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obs.WithRequestID(r.Context(), id)
		ctx = obs.WithSink(ctx, s.tel.registry)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		guarded := guardedPath(r.URL.Path)
		if guarded {
			// Per-IP token bucket, before any body is read: a single
			// flooding client is turned away at the door while /healthz
			// and /metrics stay reachable for operators.
			if ctrl := s.admission.Load(); ctrl != nil && ctrl.IPs != nil {
				if ok, retry := ctrl.IPs.Allow(clientIP(r.RemoteAddr)); !ok {
					s.stats.shedRateIP.Add(1)
					sw.status = http.StatusTooManyRequests
					writeShedFast(sw.ResponseWriter, shedBodyRateLimited, retry)
					s.tel.httpDuration.Observe(time.Since(start).Seconds())
					s.recordAvailability(sw.status)
					s.flightShed(id, slo.OutcomeShedRate)
					if lg := s.Logger(); lg.Enabled(ctx, slog.LevelWarn) {
						lg.LogAttrs(ctx, slog.LevelWarn, "request shed",
							slog.String("requestId", id),
							slog.String("reason", "rate_limited_ip"),
							slog.String("path", r.URL.Path))
					}
					return
				}
			}
			// Cap the body BEFORE the handler decodes it: one oversized
			// /v1/learn payload must be a 413, not an OOM. /v1/snapshot
			// is exempt — wire images dwarf API bodies by design and the
			// handler applies its own DefaultMaxSnapshotBytes cap.
			if max := s.maxBodyBytes.Load(); max > 0 && r.Body != nil && r.ContentLength != 0 &&
				r.URL.Path != "/v1/snapshot" {
				r.Body = http.MaxBytesReader(sw, r.Body, max)
			}
		}
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		// The request ID doubles as the exemplar trace key here (the
		// middleware never sees the suggestion trace ID); TraceRing.Find
		// resolves either.
		s.tel.httpDuration.ObserveExemplar(elapsed.Seconds(), id, id)
		if guarded {
			// The availability objective watches exactly the guarded API
			// surface: shed 429s are the server answering as designed,
			// only 5xx burns budget (recordAvailability classifies).
			s.recordAvailability(sw.status)
		}
		s.Logger().LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("requestId", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Float64("elapsedMs", ms(elapsed)),
		)
	})
}

// finishTrace closes out one suggestion trace: ring-buffer it, and when
// the request overran the slow-query threshold, log it in full. The
// strategy and generation ride along so a slow-query line is
// join-free: requestId, traceId, strategy and generation are all
// first-class structured fields.
func (s *Server) finishTrace(tr *obs.Trace, elapsed time.Duration, strategy string, generation uint64) obs.TraceSnapshot {
	snap := tr.Snapshot()
	s.traces.Add(snap)
	if thr := s.SlowQueryThreshold(); thr > 0 && elapsed > thr {
		s.stats.slowQueries.Add(1)
		attrs := []slog.Attr{
			slog.String("requestId", snap.ID),
			slog.String("traceId", snap.TraceID),
			slog.String("strategy", strategy),
			slog.Uint64("generation", generation),
			slog.Float64("elapsedMs", ms(elapsed)),
			slog.Float64("thresholdMs", ms(thr)),
		}
		for _, sp := range snap.Spans {
			attrs = append(attrs, slog.Group(sp.Name,
				slog.Float64("durationMs", sp.DurationMS),
				slog.Any("attrs", sp.Attrs)))
		}
		s.Logger().LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
	}
	return snap
}

// --- Debug / exposition endpoints ------------------------------------

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.Snapshots()})
}

// handleStatsReset re-baselines the latency/depth histograms (counts,
// sums, and the previously forever-growing max) so a long-running
// process can measure "since the last deploy/incident" instead of
// "since boot". Counters keep counting.
func (s *Server) handleStatsReset(w http.ResponseWriter, r *http.Request) {
	s.tel.reset()
	s.Logger().LogAttrs(r.Context(), slog.LevelInfo, "stats reset",
		slog.String("requestId", obs.RequestIDFrom(r.Context())))
	writeJSON(w, http.StatusOK, map[string]string{"status": "reset"})
}

// mountDebug wires the observability routes onto the mux: Prometheus
// exposition, the trace ring, histogram reset, expvar, and (opt-in)
// pprof.
func (s *Server) mountDebug(mux *http.ServeMux) {
	mux.Handle("GET /metrics", s.tel.registry.Handler())
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/exemplars", s.handleExemplars)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("POST /debug/stats/reset", s.handleStatsReset)
	if s.pprofEnabled {
		mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
}
