package server

import (
	"net/http/httptest"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

// personalized server fixture (the default fixture skips profiles).
func personalizedServer(t *testing.T) (*Server, *httptest.Server, *synth.World) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 82, NumFacets: 4, NumUsers: 8, SessionsPerUser: 15})
	engine, err := core.NewEngine(w.Log, core.Config{
		Compact: bipartite.CompactConfig{Budget: 40},
		UPM:     topicmodel.UPMConfig{K: 4, Iterations: 20, Seed: 1, HyperRounds: 1, HyperIters: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, w
}

func TestLearnEndpoint(t *testing.T) {
	srv, ts, w := personalizedServer(t)
	q := pickKnownQuery(t, w)

	// No history yet → 404.
	if code := postJSON(t, ts.URL+"/api/learn", LearnRequest{User: "visitor"}, nil); code != 404 {
		t.Fatalf("learn without history: status %d, want 404", code)
	}
	// Record a few searches through the log endpoint.
	for i := 0; i < 4; i++ {
		if code := postJSON(t, ts.URL+"/api/log", LogRequest{User: "visitor", Query: q}, nil); code != 200 {
			t.Fatalf("log: status %d", code)
		}
	}
	var out map[string]any
	if code := postJSON(t, ts.URL+"/api/learn", LearnRequest{User: "visitor"}, &out); code != 200 {
		t.Fatalf("learn: status %d (%v)", code, out)
	}
	if srv.Engine().Profiles().Theta("visitor") == nil {
		t.Fatal("visitor has no profile after /api/learn")
	}
	// Missing user → 400.
	if code := postJSON(t, ts.URL+"/api/learn", LearnRequest{}, nil); code != 400 {
		t.Errorf("empty user: status %d", code)
	}
}

func TestLearnEndpointWithoutProfiles(t *testing.T) {
	_, ts, w, _ := testServer(t) // diversification-only engine
	q := pickKnownQuery(t, w)
	postJSON(t, ts.URL+"/api/log", LogRequest{User: "u", Query: q}, nil)
	if code := postJSON(t, ts.URL+"/api/learn", LearnRequest{User: "u"}, nil); code != 409 {
		t.Errorf("learn on profile-less engine: status %d, want 409", code)
	}
}
