package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/synth"
)

// cachedServer is a diversification-only fixture with the suggestion
// cache enabled, the way cmd/pqsda -serve wires it.
func cachedServer(t *testing.T) (*Server, *httptest.Server, *synth.World) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 83, NumFacets: 4, NumUsers: 8, SessionsPerUser: 12})
	engine, err := core.NewEngine(w.Log, core.Config{
		Compact:             bipartite.CompactConfig{Budget: 40},
		SkipPersonalization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.EnableCache(512, 0)
	srv := New(engine, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, w
}

// A repeated request is served from cache, reported as such, and
// byte-identical to the uncached answer for the same snapshot.
func TestSuggestServedFromCache(t *testing.T) {
	srv, ts, w := cachedServer(t)
	q := url.QueryEscape(pickKnownQuery(t, w))

	var first, second, fresh SuggestResponse
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5", &first); code != 200 {
		t.Fatalf("status %d", code)
	}
	if first.Cached {
		t.Fatal("first request reported a cache hit")
	}
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5", &second); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !second.Cached {
		t.Fatal("repeat request missed the cache")
	}
	// nocache=1 bypasses the cache and recomputes — same answer.
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5&nocache=1", &fresh); code != 200 {
		t.Fatalf("status %d", code)
	}
	if fresh.Cached {
		t.Fatal("nocache request reported a cache hit")
	}
	if fmt.Sprint(first.Suggestions) != fmt.Sprint(second.Suggestions) ||
		fmt.Sprint(first.Suggestions) != fmt.Sprint(fresh.Suggestions) {
		t.Fatalf("cached/uncached diverged:\n%v\n%v\n%v", first.Suggestions, second.Suggestions, fresh.Suggestions)
	}

	var stats map[string]any
	getJSON(t, ts.URL+"/v1/stats", &stats)
	cache, ok := stats["cache"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats has no cache section: %v", stats)
	}
	if cache["hits"].(float64) < 1 || cache["misses"].(float64) < 1 {
		t.Errorf("cache stats = %v", cache)
	}
	if stats["suggest"].(map[string]any)["cacheHits"].(float64) < 1 {
		t.Errorf("suggest.cacheHits missing: %v", stats["suggest"])
	}
	if srv.Engine().Cache().Stats().Hits < 1 {
		t.Error("engine cache counters disagree")
	}
}

// N concurrent identical requests over HTTP must trigger exactly one
// pipeline run: one miss, N−1 hits/coalesces (run with -race).
func TestConcurrentHTTPRequestsCoalesce(t *testing.T) {
	srv, ts, w := cachedServer(t)
	q := url.QueryEscape(pickKnownQuery(t, w))
	before := srv.Engine().SolveCount()

	const n = 16
	var wg sync.WaitGroup
	lists := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out SuggestResponse
			if code := getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5", &out); code != 200 {
				t.Errorf("status %d", code)
				return
			}
			lists[i] = fmt.Sprint(out.Suggestions)
		}(i)
	}
	wg.Wait()

	if got := srv.Engine().SolveCount() - before; got != 1 {
		t.Fatalf("%d CG solves for %d concurrent identical requests", got, n)
	}
	for i := 1; i < n; i++ {
		if lists[i] != lists[0] {
			t.Fatalf("request %d saw a different list", i)
		}
	}
	st := srv.Engine().Cache().Stats()
	if st.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 (%+v)", st.Misses, st)
	}
}

// The swap-invalidation acceptance test over HTTP, run with -race:
// while suggestion traffic hammers a cached server, refreshes hot-swap
// new engine generations. Invariants: (a) generations observed by one
// sequential client never decrease, (b) after a swap is acknowledged,
// the cached answer equals a forced fresh recompute — a post-swap
// request can never observe a pre-swap cached list.
func TestCacheInvalidationAcrossSwapsHTTP(t *testing.T) {
	srv, ts, w := cachedServer(t)
	rawQ := pickKnownQuery(t, w)
	q := url.QueryEscape(rawQ)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var out SuggestResponse
				code := getJSON(t, fmt.Sprintf("%s/v1/suggest?user=u%d&q=%s&k=5", ts.URL, g, q), &out)
				if code != http.StatusOK {
					t.Errorf("suggest during swaps: status %d", code)
					return
				}
				if out.Generation < lastGen {
					t.Errorf("generation went backwards: %d after %d", out.Generation, lastGen)
					return
				}
				lastGen = out.Generation
			}
		}(g)
	}

	// Sequential swapper: feed fresh traffic, refresh, then verify the
	// cached answer for the new generation against a forced recompute.
	for swap := 0; swap < 4; swap++ {
		for i := 0; i < 3; i++ {
			postJSON(t, ts.URL+"/v1/log", LogRequest{
				User: fmt.Sprintf("fresh%d", swap), Query: fmt.Sprintf("swap probe %d", swap),
			}, nil)
		}
		var ref map[string]any
		if code := postJSON(t, ts.URL+"/v1/refresh", RefreshRequest{Mode: "graphs"}, &ref); code != 200 {
			t.Fatalf("refresh %d: status %d (%v)", swap, code, ref)
		}
		newGen := uint64(ref["generation"].(float64))

		var cached, fresh SuggestResponse
		if code := getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5", &cached); code != 200 {
			t.Fatalf("post-swap suggest: status %d", code)
		}
		if cached.Generation < newGen {
			t.Fatalf("post-swap request served generation %d, refresh produced %d", cached.Generation, newGen)
		}
		if code := getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5&nocache=1", &fresh); code != 200 {
			t.Fatalf("post-swap nocache suggest: status %d", code)
		}
		// Identical snapshot → identical list, whether cached or not. A
		// stale pre-swap entry would show up here as a divergence.
		if cached.Generation == fresh.Generation &&
			fmt.Sprint(cached.Suggestions) != fmt.Sprint(fresh.Suggestions) {
			t.Fatalf("swap %d: cached list diverged from fresh compute at generation %d:\n%v\n%v",
				swap, cached.Generation, cached.Suggestions, fresh.Suggestions)
		}
	}
	close(stop)
	wg.Wait()

	// The engine chain ended ≥ 4 generations past the seed.
	if gen := srv.Engine().Generation(); gen < 5 {
		t.Errorf("final generation = %d after 4 swaps", gen)
	}
}

// The TTL flag path: entries expire even without a swap.
func TestServerCacheTTL(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 84, NumFacets: 3, NumUsers: 6, SessionsPerUser: 10})
	engine, err := core.NewEngine(w.Log, core.Config{
		Compact:             bipartite.CompactConfig{Budget: 30},
		SkipPersonalization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := engine.EnableCache(64, time.Minute)
	now := time.Now()
	clock := now
	var mu sync.Mutex
	cache.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return clock })
	srv := New(engine, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	q := url.QueryEscape(pickKnownQuery(t, w))
	var out SuggestResponse
	getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5", &out)
	getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5", &out)
	if !out.Cached {
		t.Fatal("warm entry not served")
	}
	mu.Lock()
	clock = clock.Add(2 * time.Minute)
	mu.Unlock()
	getJSON(t, ts.URL+"/v1/suggest?q="+q+"&k=5", &out)
	if out.Cached {
		t.Fatal("expired entry served")
	}
	if cache.Stats().Expirations < 1 {
		t.Error("no expiration counted")
	}
}
