package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/slo"
)

// This file wires the SLO subsystem (internal/slo) into the server:
// objective registration from one declarative config, good/bad event
// recording from the serving path, the periodic burn-rate evaluation
// loop (which feeds /v1/health, sets the admission advisory, and dumps
// the flight recorder on a fast-burn transition), and the two debug
// endpoints that close the observability loop — /debug/exemplars (from
// "p99 is high" to the span tree of an actual slow request, with
// per-stage budget attribution) and /debug/flightrecorder (the wide
// events of every recent request as JSONL).

// SLOConfig declares the server's service-level objectives and the
// flight-recorder/evaluation plumbing around them. The zero value of
// any field takes the documented default; DefaultSLOConfig returns the
// whole recommended posture.
type SLOConfig struct {
	// LatencyP99 is the end-to-end suggestion latency budget: the
	// latency objective counts a request good iff it finished within
	// it. Stage sub-objectives get fixed fractions of this budget
	// (compact 15%, solve 35%, hitting 35%, personalize 15%).
	LatencyP99 time.Duration
	// Availability is the good-ratio goal over guarded API requests
	// (good = status < 500).
	Availability float64
	// LatencyGoal is the good-ratio goal of the latency objectives
	// (0.99 = "99% of requests within budget", i.e. a p99 target).
	LatencyGoal float64
	// DegradedRatio is the goal for the fraction of suggestion
	// responses served at full fidelity (not breaker-degraded).
	DegradedRatio float64
	// FlightRecorderSize is the wide-event ring capacity.
	FlightRecorderSize int
	// DumpDir, when set, receives an automatic flight-recorder JSONL
	// dump every time an objective transitions into fast burn.
	DumpDir string
	// SnapshotMaxAge, when positive, marks the engine component
	// degraded on /v1/health once the serving snapshot is older.
	SnapshotMaxAge time.Duration
	// EvalInterval is the background burn-rate evaluation period. Zero
	// disables the ticker (tests drive EvaluateSLO directly).
	EvalInterval time.Duration
	// ExemplarMinAge rate-limits per-bucket exemplar rotation (0: 1s;
	// negative: rotate every observation — test mode).
	ExemplarMinAge time.Duration
	// Burn tunes the burn-rate windows and clock (zero: SRE-workbook
	// defaults; tests inject a fake clock here).
	Burn slo.Config
}

// DefaultSLOConfig is the recommended posture: 250ms end-to-end p99,
// 99.9% availability, 99% of responses at full fidelity, a 4096-event
// recorder, evaluation every 10s.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		LatencyP99:         250 * time.Millisecond,
		Availability:       0.999,
		LatencyGoal:        0.99,
		DegradedRatio:      0.99,
		FlightRecorderSize: slo.DefaultFlightRecorderSize,
		EvalInterval:       10 * time.Second,
	}
}

func (c SLOConfig) withDefaults() SLOConfig {
	d := DefaultSLOConfig()
	if c.LatencyP99 <= 0 {
		c.LatencyP99 = d.LatencyP99
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = d.Availability
	}
	if c.LatencyGoal <= 0 || c.LatencyGoal >= 1 {
		c.LatencyGoal = d.LatencyGoal
	}
	if c.DegradedRatio <= 0 || c.DegradedRatio >= 1 {
		c.DegradedRatio = d.DegradedRatio
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = d.FlightRecorderSize
	}
	return c
}

// stageBudgetShares split the end-to-end budget across the pipeline
// stages for the per-stage latency objectives. They sum to 1; the
// solver stages get the lion's share because that is where regressions
// live (Fig. 7 of the paper).
var stageBudgetShares = []struct {
	stage string
	share float64
}{
	{"compact", 0.15},
	{"solve", 0.35},
	{"hitting", 0.35},
	{"personalize", 0.15},
}

// sloRuntime is the per-server SLO state installed by EnableSLO.
type sloRuntime struct {
	cfg          SLOConfig
	engine       *slo.Engine
	availability *slo.Tracker
	latencyTotal *slo.Tracker
	stageLatency map[string]*slo.Tracker
	fidelity     *slo.Tracker
	flight       *slo.FlightRecorder
	dumpedInPass atomic.Bool
	stop         chan struct{}
	stopOnce     sync.Once
}

// EnableSLO installs the SLO subsystem: registers the objectives,
// allocates the flight recorder, turns on exemplar retention for the
// latency histograms, hooks fast-burn transitions to the recorder dump,
// and (when EvalInterval > 0) starts the background evaluation loop.
// Call before Handler()/serving; calling again replaces the previous
// runtime (the old evaluation loop is stopped).
func (s *Server) EnableSLO(cfg SLOConfig) {
	cfg = cfg.withDefaults()
	if old := s.sloState.Load(); old != nil {
		old.close()
	}
	eng := slo.NewEngine(cfg.Burn)
	rt := &sloRuntime{
		cfg:          cfg,
		engine:       eng,
		stageLatency: make(map[string]*slo.Tracker, len(stageBudgetShares)),
		flight:       slo.NewFlightRecorder(cfg.FlightRecorderSize),
		stop:         make(chan struct{}),
	}
	rt.availability = eng.Register(slo.Objective{
		Name: "availability",
		Help: "Guarded API requests answered without a 5xx.",
		Goal: cfg.Availability,
	})
	rt.latencyTotal = eng.Register(slo.Objective{
		Name:          "latency_total",
		Help:          "Suggestions finished within the end-to-end budget.",
		Goal:          cfg.LatencyGoal,
		LatencyBudget: cfg.LatencyP99,
	})
	for _, sb := range stageBudgetShares {
		rt.stageLatency[sb.stage] = eng.Register(slo.Objective{
			Name:          "latency_" + sb.stage,
			Help:          "Stage runs finished within the stage's share of the budget.",
			Goal:          cfg.LatencyGoal,
			LatencyBudget: time.Duration(float64(cfg.LatencyP99) * sb.share),
		})
	}
	rt.fidelity = eng.Register(slo.Objective{
		Name: "full_fidelity",
		Help: "Suggestion responses served by the full pipeline (not breaker-degraded).",
		Goal: cfg.DegradedRatio,
	})
	eng.OnFastBurn(func(st slo.Status) {
		s.Logger().LogAttrs(context.Background(), slog.LevelError, "slo fast burn",
			slog.String("objective", st.Name),
			slog.Float64("burnLong", st.FastLong),
			slog.Float64("burnShort", st.FastShort),
			slog.Float64("budgetRemaining", st.BudgetRemaining))
		if cfg.DumpDir == "" {
			return
		}
		// Several objectives often cross into fast burn at the same
		// evaluation (e.g. one slow dependency breaches every stage
		// budget at once); the ring contents are identical, so write
		// one dump per evaluation pass, not one per objective.
		if !rt.dumpedInPass.CompareAndSwap(false, true) {
			return
		}
		path, err := rt.flight.DumpToDir(cfg.DumpDir)
		if err != nil {
			s.Logger().LogAttrs(context.Background(), slog.LevelError, "flight recorder dump failed",
				slog.String("objective", st.Name), slog.String("error", err.Error()))
			return
		}
		s.Logger().LogAttrs(context.Background(), slog.LevelWarn, "flight recorder dumped",
			slog.String("objective", st.Name), slog.String("path", path))
	})

	// Exemplar retention on the histograms whose tails operators chase.
	for _, h := range s.tel.stages {
		h.EnableExemplars(cfg.ExemplarMinAge)
	}
	for _, h := range s.tel.selectDuration {
		h.EnableExemplars(cfg.ExemplarMinAge)
	}
	s.tel.httpDuration.EnableExemplars(cfg.ExemplarMinAge)

	s.tel.registerSLO(s, rt)
	s.sloState.Store(rt)

	if cfg.EvalInterval > 0 {
		go func() {
			t := time.NewTicker(cfg.EvalInterval)
			defer t.Stop()
			for {
				select {
				case <-rt.stop:
					return
				case <-t.C:
					s.EvaluateSLO()
				}
			}
		}()
	}
}

func (rt *sloRuntime) close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
}

// Close releases the server's background resources (the SLO evaluation
// loop). Safe to call multiple times and on a server without SLOs.
func (s *Server) Close() {
	if rt := s.sloState.Load(); rt != nil {
		rt.close()
	}
}

// EvaluateSLO runs one burn-rate evaluation across every objective,
// updates the admission advisory from the worst state, and returns the
// statuses. The background loop calls it every EvalInterval; tests call
// it directly after advancing their fake clock. Nil-safe: returns nil
// when SLOs are disabled.
func (s *Server) EvaluateSLO() []slo.Status {
	rt := s.sloState.Load()
	if rt == nil {
		return nil
	}
	rt.dumpedInPass.Store(false)
	out := rt.engine.Evaluate()
	if ctrl := s.admission.Load(); ctrl != nil {
		switch rt.engine.State() {
		case slo.FastBurn:
			ctrl.SetAdvisory(admission.AdvisoryShed)
		case slo.SlowBurn:
			ctrl.SetAdvisory(admission.AdvisoryConserve)
		default:
			ctrl.SetAdvisory(admission.AdvisoryNone)
		}
	}
	return out
}

// SLOStatuses returns the objectives' statuses as of the last
// evaluation (nil when SLOs are disabled).
func (s *Server) SLOStatuses() []slo.Status {
	if rt := s.sloState.Load(); rt != nil {
		return rt.engine.Statuses()
	}
	return nil
}

// SLOState returns the worst objective state as of the last evaluation
// (Healthy when SLOs are disabled).
func (s *Server) SLOState() slo.State {
	if rt := s.sloState.Load(); rt != nil {
		return rt.engine.State()
	}
	return slo.Healthy
}

// FlightRecorder returns the wide-event ring (nil when SLOs are
// disabled).
func (s *Server) FlightRecorder() *slo.FlightRecorder {
	if rt := s.sloState.Load(); rt != nil {
		return rt.flight
	}
	return nil
}

// registerSLO adds the SLO/flight-recorder metric series. Called from
// EnableSLO — registration locks the registry, which is fine off the
// serving path. Re-enabling registers duplicates; EnableSLO is a
// construction-time call.
func (t *telemetry) registerSLO(s *Server, rt *sloRuntime) {
	t.registry.GaugeFunc("pqsda_slo_state",
		"Worst objective state at the last evaluation (0 healthy, 1 slow burn, 2 fast burn).", nil,
		func() float64 { return float64(rt.engine.State()) })
	t.registry.CounterFunc("pqsda_flightrecorder_events_total",
		"Wide events recorded by the flight recorder.", nil,
		func() float64 { return float64(rt.flight.Recorded()) })
	t.registry.CounterFunc("pqsda_flightrecorder_dumps_total",
		"Automatic flight-recorder dump files written.", nil,
		func() float64 { return float64(rt.flight.Dumps()) })
}

// --- Serving-path recording -------------------------------------------

// recordAvailability counts one guarded API response against the
// availability objective (good = no 5xx). Shed 429s are good events:
// the server answered as designed; only server faults burn the budget.
func (s *Server) recordAvailability(status int) {
	if rt := s.sloState.Load(); rt != nil {
		rt.availability.Record(status < 500)
	}
}

// recordSuggestSLO classifies one completed suggestion for the latency
// and fidelity objectives.
func (s *Server) recordSuggestSLO(res core.Result, elapsed time.Duration, degraded bool) {
	rt := s.sloState.Load()
	if rt == nil {
		return
	}
	rt.latencyTotal.ObserveLatency(elapsed)
	if res.CompactTime > 0 {
		rt.stageLatency["compact"].ObserveLatency(res.CompactTime)
	}
	if res.SolveTime > 0 {
		rt.stageLatency["solve"].ObserveLatency(res.SolveTime)
	}
	if res.HittingTime > 0 {
		rt.stageLatency["hitting"].ObserveLatency(res.HittingTime)
	}
	if res.PersonalizeTime > 0 {
		rt.stageLatency["personalize"].ObserveLatency(res.PersonalizeTime)
	}
	rt.fidelity.Record(!degraded)
}

// classifySuggest maps one pipeline outcome to its flight-recorder
// disposition and HTTP status, mirroring exactly the branches
// suggestOnce takes when shaping the response.
func classifySuggest(ctx context.Context, degraded bool, err error, aerr *apiError) (slo.Outcome, int) {
	switch {
	case aerr != nil:
		// Breaker open, nothing cached, no brownout: 503.
		return slo.OutcomeDegradedMiss, statusOf(aerr.Code)
	case err != nil && errors.Is(err, core.ErrUnknownStrategy):
		return slo.OutcomeBadRequest, http.StatusBadRequest
	case err != nil && ctx.Err() != nil:
		return slo.OutcomeTimeout, http.StatusGatewayTimeout
	case err != nil && errors.Is(err, core.ErrUnknownQuery):
		return slo.OutcomeUnknownQuery, http.StatusOK
	case err != nil:
		return slo.OutcomeError, http.StatusInternalServerError
	case degraded:
		return slo.OutcomeDegraded, http.StatusOK
	default:
		return slo.OutcomeOK, http.StatusOK
	}
}

// flightEvent assembles and records one wide event. The event lives on
// the stack and Record copies it into the ring, so the whole call is
// allocation-free — cheap enough for the shed path's per-request
// budget. No-op when SLOs are disabled.
func (s *Server) flightEvent(reqID, traceID string, creq core.SuggestRequest, res core.Result,
	elapsed time.Duration, outcome slo.Outcome, status int, degraded, brownout bool) {
	rt := s.sloState.Load()
	if rt == nil {
		return
	}
	var ev slo.WideEvent
	ev.UnixNano = time.Now().UnixNano()
	ev.SetRequestID(reqID)
	ev.SetTraceID(traceID)
	ev.SetStrategy(res.Strategy)
	ev.Outcome = outcome
	ev.Status = uint16(status)
	ev.K = uint16(creq.K)
	ev.Generation = res.Generation
	ev.CacheHit = res.CacheHit
	ev.Degraded = degraded
	ev.Brownout = brownout
	ev.TotalNs = int64(elapsed)
	ev.CompactNs = int64(res.CompactTime)
	ev.SolveNs = int64(res.SolveTime)
	ev.HittingNs = int64(res.HittingTime)
	ev.PersonalizeNs = int64(res.PersonalizeTime)
	if ctrl := s.admission.Load(); ctrl != nil {
		ev.GateDepth = int32(ctrl.Suggest.Waiting())
		ev.BreakerState = uint8(ctrl.Breaker.StateValue())
	}
	rt.flight.Record(&ev)
}

// flightShed records the wide event of a request shed before the
// pipeline ran (gate full, rate limited). Stays within the shed path's
// two-allocation budget: the event is stack-built and Record is
// allocation-free.
func (s *Server) flightShed(reqID string, outcome slo.Outcome) {
	rt := s.sloState.Load()
	if rt == nil {
		return
	}
	var ev slo.WideEvent
	ev.UnixNano = time.Now().UnixNano()
	ev.SetRequestID(reqID)
	ev.Outcome = outcome
	ev.Status = http.StatusTooManyRequests
	if ctrl := s.admission.Load(); ctrl != nil {
		ev.GateDepth = int32(ctrl.Suggest.Waiting())
		ev.BreakerState = uint8(ctrl.Breaker.StateValue())
	}
	rt.flight.Record(&ev)
}

// --- Debug endpoints --------------------------------------------------

// exemplarEntry is one pinned observation on /debug/exemplars: the
// metric bucket it occupies, the request behind it, and — when the
// trace is still in the ring — the per-stage budget attribution
// computed from its span tree.
type exemplarEntry struct {
	Metric    string     `json:"metric"`
	Labels    obs.Labels `json:"labels,omitempty"`
	Le        string     `json:"le"`
	Value     float64    `json:"value"`
	RequestID string     `json:"requestId"`
	TraceID   string     `json:"traceId"`
	At        time.Time  `json:"at"`
	// Attribution breaks the traced request's wall time down by span —
	// the "where did the budget go" answer. Absent when the trace has
	// rotated out of the ring.
	Attribution *traceAttribution `json:"attribution,omitempty"`
}

// traceAttribution is the per-span cost breakdown of one trace.
type traceAttribution struct {
	TotalMs float64           `json:"totalMs"`
	Spans   []spanAttribution `json:"spans"`
}

type spanAttribution struct {
	Name       string  `json:"name"`
	DurationMs float64 `json:"durationMs"`
	// PctOfTotal is the span's share of the end-to-end wall time in
	// percent. Spans overlap (suggest contains the stage spans), so the
	// shares do not sum to 100.
	PctOfTotal float64 `json:"pctOfTotal"`
}

func attributeTrace(ts obs.TraceSnapshot) *traceAttribution {
	out := &traceAttribution{TotalMs: ts.DurationMS}
	for _, sp := range ts.Spans {
		pct := 0.0
		if ts.DurationMS > 0 {
			pct = 100 * sp.DurationMS / ts.DurationMS
		}
		out.Spans = append(out.Spans, spanAttribution{
			Name: sp.Name, DurationMs: sp.DurationMS, PctOfTotal: pct,
		})
	}
	return out
}

// handleExemplars serves GET /debug/exemplars: every pinned exemplar
// across the histogram families, each resolved (when possible) against
// the trace ring into a per-stage budget attribution. ?trace=<id>
// resolves one trace/request ID directly.
func (s *Server) handleExemplars(w http.ResponseWriter, r *http.Request) {
	if s.sloState.Load() == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "slo subsystem disabled; start with EnableSLO / -slo flags"})
		return
	}
	if id := r.URL.Query().Get("trace"); id != "" {
		ts, ok := s.traces.Find(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "trace not in the ring", "trace": id})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"trace":       ts,
			"attribution": attributeTrace(ts),
		})
		return
	}
	var entries []exemplarEntry
	for _, hs := range s.tel.registry.Histograms() {
		snap := hs.Hist.Snapshot()
		if snap.Exemplars == nil {
			continue
		}
		for i, ex := range snap.Exemplars {
			if ex == nil {
				continue
			}
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = strconv.FormatFloat(snap.Bounds[i], 'g', -1, 64)
			}
			e := exemplarEntry{
				Metric: hs.Name, Labels: hs.Labels, Le: le,
				Value: ex.Value, RequestID: ex.RequestID, TraceID: ex.TraceID, At: ex.Time,
			}
			if ts, ok := s.traces.Find(ex.TraceID); ok {
				e.Attribution = attributeTrace(ts)
			}
			entries = append(entries, e)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"exemplars": entries})
}

// handleFlightRecorder serves GET /debug/flightrecorder: the wide-event
// ring as JSONL, oldest first.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	rt := s.sloState.Load()
	if rt == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "slo subsystem disabled; start with EnableSLO / -slo flags"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Flightrecorder-Capacity", strconv.Itoa(rt.flight.Size()))
	w.Header().Set("X-Flightrecorder-Recorded", strconv.FormatUint(rt.flight.Recorded(), 10))
	if _, err := rt.flight.WriteJSONL(w); err != nil {
		// Headers are gone; nothing to do but note it.
		s.Logger().LogAttrs(r.Context(), slog.LevelWarn, "flight recorder dump aborted",
			slog.String("error", err.Error()))
	}
}

// sloStatsPayload is the /v1/stats "slo" section.
func (s *Server) sloStatsPayload() map[string]any {
	rt := s.sloState.Load()
	if rt == nil {
		return map[string]any{"enabled": false}
	}
	return map[string]any{
		"enabled":    true,
		"state":      rt.engine.State().String(),
		"objectives": rt.engine.Statuses(),
		"flightRecorder": map[string]any{
			"capacity": rt.flight.Size(),
			"recorded": rt.flight.Recorded(),
			"dumps":    rt.flight.Dumps(),
		},
		"latencyBudgetMs": float64(rt.cfg.LatencyP99.Microseconds()) / 1000,
	}
}
