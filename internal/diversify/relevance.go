package diversify

import "context"

// relevanceStrategy is the relevance-gate order itself: First, then the
// pool in descending Eq. 15 score, no diversification. It runs zero
// hitting-time sweeps and zero pairwise similarity work, which makes it
// the cheapest registered selector — the admission-control brownout
// fallback (Fallback) when the breaker is open and the cache is cold.
type relevanceStrategy struct{}

func (relevanceStrategy) Name() string { return Fallback }

func (relevanceStrategy) Params() map[string]any { return map[string]any{} }

func (relevanceStrategy) Select(ctx context.Context, req Request) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	selected := []int{req.First}
	for _, c := range candidateList(req) {
		if len(selected) >= req.K {
			break
		}
		selected = append(selected, c)
	}
	return selected, nil
}
