// Package diversify defines the diversification stage boundary of the
// suggestion pipeline: a Diversifier selects k diverse suggestions from
// the relevance-gated candidate pool of one compact representation.
//
// The paper's cross-bipartite hitting-time selector (Algorithm 1) is
// one point in a much larger design space — MMR, PFAR, intent-model
// diversification and the 2022 diversification survey all treat the
// selector as a swappable component. This package makes that boundary
// first-class: strategies register themselves under a stable name,
// core.Engine resolves the per-request strategy against the registry,
// and the suggestion cache keys on the strategy name so lists produced
// by different selectors can never be served for each other.
//
// Registered strategies:
//
//	hitting    the paper's truncated cross-bipartite hitting time
//	           (Algorithm 1); the default, bit-identical to the
//	           pre-registry pipeline
//	mmr        Maximal Marginal Relevance over the compact cf·iqf
//	           query vectors: λ·relevance − (1−λ)·max similarity to
//	           the already-selected set
//	pfar       PFAR-style topic coverage: relevance plus a λ·τ bonus
//	           for candidates whose topics are not covered yet
//	relevance  the relevance-gate order itself (no diversification);
//	           the cheapest selector and the designated admission-
//	           control brownout fallback
package diversify

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/hittingtime"
)

// Request carries everything one selection needs. All slices are
// read-only for the strategy.
type Request struct {
	// Compact is the compact representation the candidates live in;
	// every index below is compact-local.
	Compact *bipartite.Compact
	// Query is the raw input query (adapter strategies that wrap
	// external suggesters re-run it through their own pipeline).
	Query string
	// First is the Eq. 15 first candidate; every selection starts with
	// it.
	First int
	// K is the number of suggestions wanted (including First).
	K int
	// Excluded lists the seed locals (input query + search context)
	// that must never be suggested.
	Excluded []int
	// Pool is the relevance gate: the candidate locals diversification
	// may pick from, in descending Eq. 15 score order.
	Pool []int
	// Relevance is the full F* score vector of the Eq. 15 solve,
	// indexed by compact-local id.
	Relevance []float64
	// TopicsOf returns the topic ids of a compact-local query (UPM
	// topics when the engine has profiles, clicked-URL objects
	// otherwise). Nil when the engine cannot provide topics; topic-
	// aware strategies then degrade to relevance order.
	TopicsOf func(local int) []int
	// TopicWeights are the global (user-independent) topic proportions
	// aligned with TopicsOf's UPM topic ids; nil means uniform. Kept
	// user-independent on purpose: the suggestion cache stores the
	// diversified list across users.
	TopicWeights []float64
}

// Diversifier is one selection strategy. Select returns up to K
// compact-local indices, First-led, drawn from Pool minus Excluded.
// Implementations must be safe for concurrent use and deterministic
// for identical requests (the suggestion cache depends on it).
type Diversifier interface {
	// Name is the stable registry name (lower-case, used in cache keys,
	// API requests and metric labels).
	Name() string
	// Params reports the strategy's resolved configuration for
	// discovery surfaces (GET /v1/strategies).
	Params() map[string]any
	// Select picks the suggestions. A ctx error aborts the selection;
	// partial results may be returned alongside the error.
	Select(ctx context.Context, req Request) ([]int, error)
}

// Config is the strategy configuration embedded in core.Config. It is
// deliberately scalar-only: core.Config is gob-persisted, so no
// functions or interfaces may live here.
type Config struct {
	// Strategy is the engine's default selection strategy name; empty
	// means Default.
	Strategy string
	// MMRLambda trades relevance against novelty in the MMR selector
	// (0 < λ ≤ 1; default 0.7).
	MMRLambda float64
	// PFARLambda scales the PFAR topic-coverage bonus (default 1).
	PFARLambda float64
	// PFARTau scales the PFAR bonus by the caller's diversification
	// appetite (default 1).
	PFARTau float64
}

// Options parameterizes strategy construction: the shared scalar
// Config plus the hitting-time stage configuration (workers, truncation
// depth, tolerance) the default strategy runs with.
type Options struct {
	Config
	Hitting hittingtime.Config
}

// Default is the registry name of the paper's selector.
const Default = "hitting"

// Fallback is the designated admission-control brownout strategy: the
// cheapest registered selector, used to degrade quality before
// shedding when the breaker is open and nothing is cached.
const Fallback = "relevance"

// ErrUnknown is returned by New for names no strategy registered.
var ErrUnknown = errors.New("diversify: unknown strategy")

// Factory builds one strategy instance from resolved options.
type Factory func(Options) Diversifier

var registry = map[string]Factory{}

// Register adds a strategy factory under a stable name. It panics on
// empty or duplicate names — registration is an init-time programming
// act, not a runtime input.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("diversify: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("diversify: strategy %q registered twice", name))
	}
	registry[name] = f
}

// Known reports whether a strategy name is registered.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named strategy. Unknown names wrap ErrUnknown.
func New(name string, opts Options) (Diversifier, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return f(opts), nil
}

// All builds one instance of every registered strategy.
func All(opts Options) map[string]Diversifier {
	out := make(map[string]Diversifier, len(registry))
	for name, f := range registry {
		out[name] = f(opts)
	}
	return out
}

func init() {
	Register(Default, func(o Options) Diversifier { return &hittingStrategy{cfg: o.Hitting} })
	Register("mmr", func(o Options) Diversifier { return newMMR(o) })
	Register("pfar", func(o Options) Diversifier { return newPFAR(o) })
	Register(Fallback, func(Options) Diversifier { return relevanceStrategy{} })
}
