package diversify

import (
	"context"

	"repro/internal/hittingtime"
)

// hittingStrategy is the paper's Algorithm 1: greedy selection by
// largest truncated cross-bipartite hitting time to the already-
// selected set. It delegates to internal/hittingtime with exactly the
// arguments the pre-registry pipeline used, so the registry-backed
// default is bit-identical to the hard-wired stage it replaced (the
// parity test in internal/core pins this).
type hittingStrategy struct {
	cfg hittingtime.Config
}

func (h *hittingStrategy) Name() string { return Default }

func (h *hittingStrategy) Params() map[string]any {
	return map[string]any{
		"iterations": h.cfg.Iterations,
		"tolerance":  h.cfg.Tolerance,
		"crossView":  h.cfg.CrossView,
		"workers":    h.cfg.Workers,
	}
}

func (h *hittingStrategy) Select(ctx context.Context, req Request) ([]int, error) {
	walker := hittingtime.WalkerFor(req.Compact, h.cfg)
	return walker.SelectDiverseCtx(ctx, req.First, req.K, req.Excluded, req.Pool)
}
