package diversify

import (
	"context"
	"math"

	"repro/internal/bipartite"
)

// mmrStrategy is Maximal Marginal Relevance (Carbonell & Goldstein)
// over the compact representation's cf·iqf query vectors: each greedy
// round picks the candidate maximizing
//
//	λ·rel(c) − (1−λ)·max_{s ∈ selected} sim(c, s)
//
// where rel is the Eq. 15 regularization score normalized to [0,1]
// over the pool and sim is the cosine similarity of the candidates'
// rows across all three bipartite views (URL, session, term). High λ
// favors relevance, low λ novelty.
type mmrStrategy struct {
	lambda float64
}

// defaultMMRLambda balances toward relevance, matching the common
// literature setting.
const defaultMMRLambda = 0.7

func newMMR(o Options) Diversifier {
	l := o.MMRLambda
	if l <= 0 || l > 1 {
		l = defaultMMRLambda
	}
	return &mmrStrategy{lambda: l}
}

func (m *mmrStrategy) Name() string { return "mmr" }

func (m *mmrStrategy) Params() map[string]any {
	return map[string]any{"lambda": m.lambda}
}

func (m *mmrStrategy) Select(ctx context.Context, req Request) ([]int, error) {
	cands := candidateList(req)
	selected := []int{req.First}
	if len(cands) == 0 || req.K <= 1 {
		return selected, nil
	}
	vecs := newRowVectors(req.Compact)
	relMax := 0.0
	for _, c := range cands {
		if r := req.Relevance[c]; r > relMax {
			relMax = r
		}
	}
	if r := req.Relevance[req.First]; r > relMax {
		relMax = r
	}
	if relMax == 0 {
		relMax = 1
	}

	// maxSim tracks each candidate's similarity to the selected set so
	// far; each round only compares against the newest pick.
	maxSim := make(map[int]float64, len(cands))
	for _, c := range cands {
		maxSim[c] = vecs.cosine(c, req.First)
	}
	picked := map[int]bool{req.First: true}
	for len(selected) < req.K && len(picked)-1 < len(cands) {
		if err := ctx.Err(); err != nil {
			return selected, err
		}
		best, bestScore := -1, math.Inf(-1)
		for _, c := range cands {
			if picked[c] {
				continue
			}
			score := m.lambda*(req.Relevance[c]/relMax) - (1-m.lambda)*maxSim[c]
			// Strict > keeps ties on the earlier (higher-relevance)
			// pool entry, so selections are deterministic.
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		selected = append(selected, best)
		for _, c := range cands {
			if picked[c] {
				continue
			}
			if s := vecs.cosine(c, best); s > maxSim[c] {
				maxSim[c] = s
			}
		}
	}
	return selected, nil
}

// candidateList filters the pool down to pickable candidates: not the
// first pick and not an excluded seed, preserving pool (relevance)
// order.
func candidateList(req Request) []int {
	excl := make(map[int]bool, len(req.Excluded)+1)
	for _, e := range req.Excluded {
		excl[e] = true
	}
	excl[req.First] = true
	out := make([]int, 0, len(req.Pool))
	seen := make(map[int]bool, len(req.Pool))
	for _, c := range req.Pool {
		if excl[c] || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// rowVectors lazily materializes compact-local query vectors (one map
// per view per query, concatenated conceptually) with their joint norm,
// so pairwise cosines cost one sparse-map intersection per view.
type rowVectors struct {
	c    *bipartite.Compact
	rows map[int][bipartite.NumViews]map[int]float64
	norm map[int]float64
}

func newRowVectors(c *bipartite.Compact) *rowVectors {
	return &rowVectors{
		c:    c,
		rows: make(map[int][bipartite.NumViews]map[int]float64),
		norm: make(map[int]float64),
	}
}

func (rv *rowVectors) get(q int) ([bipartite.NumViews]map[int]float64, float64) {
	if r, ok := rv.rows[q]; ok {
		return r, rv.norm[q]
	}
	var r [bipartite.NumViews]map[int]float64
	sq := 0.0
	for v := 0; v < bipartite.NumViews; v++ {
		m := make(map[int]float64, rv.c.W[v].RowNNZ(q))
		rv.c.W[v].Row(q, func(o int, val float64) {
			m[o] = val
			sq += val * val
		})
		r[v] = m
	}
	rv.rows[q] = r
	rv.norm[q] = math.Sqrt(sq)
	return r, rv.norm[q]
}

// cosine is the similarity of two compact-local queries over the
// concatenation of their three view rows.
func (rv *rowVectors) cosine(a, b int) float64 {
	ra, na := rv.get(a)
	rb, nb := rv.get(b)
	if na == 0 || nb == 0 {
		return 0
	}
	dot := 0.0
	for v := 0; v < bipartite.NumViews; v++ {
		x, y := ra[v], rb[v]
		if len(y) < len(x) {
			x, y = y, x
		}
		for o, val := range x {
			dot += val * y[o]
		}
	}
	return dot / (na * nb)
}
