package diversify

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/synth"
)

func testRequest(t *testing.T, k int) Request {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 17, NumFacets: 5, NumUsers: 10, SessionsPerUser: 12})
	rep := bipartite.Build(w.Log, querylog.SessionizerConfig{}, bipartite.CFIQF)
	c := rep.BuildCompact([]int{0}, bipartite.CompactConfig{Budget: 40})
	if c.Size() < k+3 {
		t.Fatalf("compact too small for the test: %d", c.Size())
	}
	pool := make([]int, 0, c.Size())
	rel := make([]float64, c.Size())
	for i := 0; i < c.Size(); i++ {
		if i == 0 {
			continue // the seed is excluded, like the engine's seedLocals
		}
		pool = append(pool, i)
		rel[i] = 1 / float64(i+1) // descending, like a solved F*
	}
	return Request{
		Compact:   c,
		Query:     c.QueryName(0),
		First:     pool[0],
		K:         k,
		Excluded:  []int{0},
		Pool:      pool,
		Relevance: rel,
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{Default, Fallback, "mmr", "pfar"} {
		if !Known(name) {
			t.Errorf("built-in strategy %q not registered", name)
		}
		d, err := New(name, Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, d.Name())
		}
	}
	if Known("nope") {
		t.Error("unknown name reported as known")
	}
	if _, err := New("nope", Options{}); err == nil {
		t.Error("New accepted an unknown name")
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	all := All(Options{})
	if len(all) != len(names) {
		t.Errorf("All() has %d entries, Names() %d", len(all), len(names))
	}
}

// Every registered strategy must honor the Select contract: the list
// leads with a ranking head, respects K, and never contains seeds or
// duplicates. (The baselines adapter documents its own head exception;
// it is not registered here.)
func TestSelectContract(t *testing.T) {
	req := testRequest(t, 6)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d, err := New(name, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sel, err := d.Select(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if len(sel) == 0 || len(sel) > req.K {
				t.Fatalf("selected %d items, want 1..%d", len(sel), req.K)
			}
			if sel[0] != req.First {
				t.Errorf("first selection %d, want the Eq. 15 head %d", sel[0], req.First)
			}
			seen := map[int]bool{0: true} // excluded seed
			for _, v := range sel {
				if seen[v] {
					t.Fatalf("duplicate or excluded selection %d in %v", v, sel)
				}
				seen[v] = true
			}
			// Determinism: same request, same answer — the cache shares
			// lists across requests, so this is a correctness property.
			again, err := d.Select(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sel, again) {
				t.Errorf("non-deterministic selection: %v then %v", sel, again)
			}
		})
	}
}

// The relevance strategy is pool order by definition: the cheapest
// possible list, designated as the brownout fallback.
func TestRelevanceIsPoolOrder(t *testing.T) {
	req := testRequest(t, 5)
	d, err := New(Fallback, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := d.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{req.First}
	for _, v := range req.Pool {
		if len(want) >= req.K {
			break
		}
		if v != req.First {
			want = append(want, v)
		}
	}
	if !reflect.DeepEqual(sel, want) {
		t.Errorf("relevance selection %v, want pool order %v", sel, want)
	}
}

// MMR with λ=1 ignores similarity entirely and must equal the
// relevance order; λ<1 may deviate but still honors the contract.
func TestMMRLambdaOneIsRelevance(t *testing.T) {
	req := testRequest(t, 5)
	mmr, err := New("mmr", Options{Config: Config{MMRLambda: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := New(Fallback, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mmr.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rel.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Relevance in testRequest is strictly descending over the pool, so
	// pool order and pure-relevance MMR coincide.
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MMR(λ=1) = %v, want relevance order %v", got, want)
	}
}

// PFAR without topic information degrades to relevance order instead
// of failing: the strategy stays servable on engines without profiles.
func TestPFARWithoutTopicsDegrades(t *testing.T) {
	req := testRequest(t, 5) // TopicsOf nil
	pfar, err := New("pfar", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := New(Fallback, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pfar.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rel.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PFAR without topics = %v, want relevance order %v", got, want)
	}
}

// PFAR with topic ground truth must cover a second topic earlier than
// the pure relevance order when the head of the pool is monotopical.
func TestPFARCoversTopics(t *testing.T) {
	req := testRequest(t, 4)
	// Synthetic topics: the three most relevant candidates share topic
	// 0; one later candidate is the only carrier of topic 1.
	topicOf := map[int][]int{}
	for i, v := range req.Pool {
		switch {
		case i < 3:
			topicOf[v] = []int{0}
		case i == 3:
			topicOf[v] = []int{1}
		default:
			topicOf[v] = []int{0}
		}
	}
	req.TopicsOf = func(local int) []int { return topicOf[local] }
	pfar, err := New("pfar", Options{Config: Config{PFARLambda: 5, PFARTau: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := pfar.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sel[1] != req.Pool[3] {
		t.Errorf("PFAR second pick %d, want the topic-1 carrier %d (sel %v)", sel[1], req.Pool[3], sel)
	}
}

func TestSelectHonorsContextCancel(t *testing.T) {
	req := testRequest(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{Default} {
		d, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Select(ctx, req); err == nil {
			t.Errorf("%s: cancelled context accepted", name)
		}
	}
}
