package diversify

import (
	"context"
	"math"

	"repro/internal/bipartite"
)

// pfarStrategy is a PFAR-style topic-coverage selector (Vargas et al.'s
// personalized-facet formulation, de-personalized for the shared
// cache): each greedy round scores a candidate as
//
//	rel(c) + λ·τ · Σ_{t ∈ topics(c)} w_t · I{topics(c) ∩ covered = ∅}
//
// — relevance plus a weighted bonus for candidates whose topic set is
// disjoint from everything selected so far (the indicator zeroes the
// bonus on any overlap, exactly the product term of the reference
// formulation). Topics come from Request.TopicsOf: UPM topics when the
// engine has trained profiles, clicked-URL objects otherwise. The
// weights are the GLOBAL topic proportions, never a user's — the
// suggestion cache shares diversified lists across users, so the
// selection must stay user-independent.
type pfarStrategy struct {
	lambda, tau float64
}

func newPFAR(o Options) Diversifier {
	l, t := o.PFARLambda, o.PFARTau
	if l <= 0 {
		l = 1
	}
	if t <= 0 {
		t = 1
	}
	return &pfarStrategy{lambda: l, tau: t}
}

func (p *pfarStrategy) Name() string { return "pfar" }

func (p *pfarStrategy) Params() map[string]any {
	return map[string]any{"lambda": p.lambda, "tau": p.tau}
}

func (p *pfarStrategy) Select(ctx context.Context, req Request) ([]int, error) {
	cands := candidateList(req)
	selected := []int{req.First}
	if len(cands) == 0 || req.K <= 1 {
		return selected, nil
	}
	if req.TopicsOf == nil {
		// No topic source: degrade to the relevance-gate order.
		for _, c := range cands {
			if len(selected) >= req.K {
				break
			}
			selected = append(selected, c)
		}
		return selected, nil
	}

	topics := make(map[int][]int, len(cands)+1)
	topics[req.First] = req.TopicsOf(req.First)
	for _, c := range cands {
		topics[c] = req.TopicsOf(c)
	}
	relMax := 0.0
	for _, c := range cands {
		if r := req.Relevance[c]; r > relMax {
			relMax = r
		}
	}
	if relMax == 0 {
		relMax = 1
	}
	weight := func(t int) float64 {
		if t >= 0 && t < len(req.TopicWeights) {
			return req.TopicWeights[t]
		}
		if len(req.TopicWeights) > 0 {
			return 0
		}
		return 1
	}

	covered := make(map[int]bool)
	for _, t := range topics[req.First] {
		covered[t] = true
	}
	picked := map[int]bool{req.First: true}
	for len(selected) < req.K && len(picked)-1 < len(cands) {
		if err := ctx.Err(); err != nil {
			return selected, err
		}
		best, bestScore := -1, math.Inf(-1)
		for _, c := range cands {
			if picked[c] {
				continue
			}
			bonus := 0.0
			novel := true
			for _, t := range topics[c] {
				if covered[t] {
					novel = false
					break
				}
				bonus += weight(t)
			}
			score := req.Relevance[c] / relMax
			if novel {
				score += p.lambda * p.tau * bonus
			}
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		selected = append(selected, best)
		for _, t := range topics[best] {
			covered[t] = true
		}
	}
	return selected, nil
}

// URLTopics is the profile-free topic fallback: a query's "topics" are
// the clicked-URL objects of its compact row — two queries sharing a
// clicked page share an intent facet in the click-graph sense.
func URLTopics(c *bipartite.Compact, local int) []int {
	var out []int
	c.W[bipartite.ViewURL].Row(local, func(o int, _ float64) {
		out = append(out, o)
	})
	return out
}
