package numeric

import (
	"errors"
	"math"
)

// LBFGS minimizes a smooth function using the limited-memory BFGS
// two-loop recursion with a backtracking Armijo line search. It is the
// optimizer behind the UPM hyperparameter updates (paper Eqs. 25–27,
// which cite L-BFGS-B [30]); positivity constraints are handled by the
// caller through log-reparameterization (see MaximizePositive).
type LBFGS struct {
	// Memory is the number of correction pairs kept (default 8).
	Memory int
	// MaxIter bounds the outer iterations (default 100).
	MaxIter int
	// GradTol stops when ‖∇f‖∞ falls below it (default 1e-6).
	GradTol float64
	// StepTol stops when the line search cannot make progress (default 1e-12).
	StepTol float64
}

// ErrLineSearch is returned when the backtracking search cannot find a
// decreasing step; the best iterate found so far is still returned.
var ErrLineSearch = errors.New("numeric: line search failed to decrease objective")

// Minimize runs L-BFGS from x0 on objective f, which must return the
// function value and write the gradient into grad. It returns the best
// point found and its value. The returned error is nil on gradient
// convergence, ErrLineSearch when progress stalls, and nil when the
// iteration budget is exhausted while still making progress.
func (o LBFGS) Minimize(f func(x []float64, grad []float64) float64, x0 []float64) ([]float64, float64, error) {
	m := o.Memory
	if m <= 0 {
		m = 8
	}
	maxIter := o.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	gradTol := o.GradTol
	if gradTol <= 0 {
		gradTol = 1e-6
	}
	stepTol := o.StepTol
	if stepTol <= 0 {
		stepTol = 1e-12
	}

	n := len(x0)
	x := Clone(x0)
	g := make([]float64, n)
	fx := f(x, g)

	sList := make([][]float64, 0, m)
	yList := make([][]float64, 0, m)
	rhoList := make([]float64, 0, m)

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)

	for iter := 0; iter < maxIter; iter++ {
		if normInf(g) < gradTol {
			return x, fx, nil
		}
		// Two-loop recursion: dir = −H·g.
		copy(dir, g)
		alphas := make([]float64, len(sList))
		for i := len(sList) - 1; i >= 0; i-- {
			alphas[i] = rhoList[i] * Dot(sList[i], dir)
			AXPY(-alphas[i], yList[i], dir)
		}
		if k := len(sList); k > 0 {
			// Initial Hessian scaling γ = sᵀy / yᵀy.
			gamma := Dot(sList[k-1], yList[k-1]) / Dot(yList[k-1], yList[k-1])
			Scale(gamma, dir)
		}
		for i := 0; i < len(sList); i++ {
			beta := rhoList[i] * Dot(yList[i], dir)
			AXPY(alphas[i]-beta, sList[i], dir)
		}
		Scale(-1, dir)

		// Ensure descent; fall back to steepest descent otherwise.
		dg := Dot(dir, g)
		if dg >= 0 {
			copy(dir, g)
			Scale(-1, dir)
			dg = -Dot(g, g)
			sList, yList, rhoList = sList[:0], yList[:0], rhoList[:0]
		}

		// Weak-Wolfe line search by bracketing/bisection: the sufficient-
		// decrease (Armijo) condition shrinks the bracket from above, the
		// curvature condition grows it from below. The curvature check is
		// what keeps the sᵀy products positive and the L-BFGS Hessian
		// approximation healthy.
		const c1, c2 = 1e-4, 0.9
		step, lo := 1.0, 0.0
		hi := math.Inf(1)
		var fNew float64
		ok := false
		for ls := 0; ls < 60; ls++ {
			for i := range x {
				xNew[i] = x[i] + step*dir[i]
			}
			fNew = f(xNew, gNew)
			switch {
			case math.IsNaN(fNew) || math.IsInf(fNew, 0) || fNew > fx+c1*step*dg:
				hi = step
				step = (lo + hi) / 2
			case Dot(gNew, dir) < c2*dg:
				lo = step
				if math.IsInf(hi, 1) {
					step = 2 * lo
				} else {
					step = (lo + hi) / 2
				}
			default:
				ok = true
			}
			if ok || step < stepTol {
				break
			}
		}
		if !ok {
			// Accept the last Armijo-satisfying point if any; otherwise stall.
			if math.IsNaN(fNew) || math.IsInf(fNew, 0) || fNew > fx+c1*step*dg {
				return x, fx, ErrLineSearch
			}
		}

		// Update memory.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		sy := Dot(s, y)
		if sy > 1e-10 {
			if len(sList) == m {
				sList = sList[1:]
				yList = yList[1:]
				rhoList = rhoList[1:]
			}
			sList = append(sList, s)
			yList = append(yList, y)
			rhoList = append(rhoList, 1/sy)
		}
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
	}
	return x, fx, nil
}

// MaximizePositive maximizes f over strictly positive vectors by
// optimizing in log-space: it minimizes −f(exp(u)) with the chain-rule
// gradient, guaranteeing positivity without explicit bounds. This is how
// the Dirichlet hyperparameters α, β, δ of the UPM stay valid during the
// paper's Eq. 25–27 updates.
func (o LBFGS) MaximizePositive(f func(x []float64, grad []float64) float64, x0 []float64) ([]float64, float64, error) {
	n := len(x0)
	u0 := make([]float64, n)
	for i, v := range x0 {
		if v <= 0 {
			panic("numeric: MaximizePositive requires a positive starting point")
		}
		u0[i] = math.Log(v)
	}
	x := make([]float64, n)
	gx := make([]float64, n)
	// Clamp the exponent so exp never under- or overflows: the objective
	// (a log-likelihood full of Lgamma calls) needs strictly positive,
	// finite inputs even for the wild steps a line search may probe.
	const maxExp = 230 // exp(±230) ≈ 1e±100
	wrapped := func(u, gu []float64) float64 {
		for i := range u {
			e := u[i]
			if e > maxExp {
				e = maxExp
			} else if e < -maxExp {
				e = -maxExp
			}
			x[i] = math.Exp(e)
		}
		fv := f(x, gx)
		for i := range u {
			gu[i] = -gx[i] * x[i] // d(−f)/du = −df/dx · dx/du
		}
		return -fv
	}
	uBest, negF, err := o.Minimize(wrapped, u0)
	out := make([]float64, n)
	for i := range uBest {
		out[i] = math.Exp(uBest[i])
	}
	return out, -negF, err
}

func normInf(v []float64) float64 {
	max := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}
