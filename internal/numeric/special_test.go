package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLgammaKnown(t *testing.T) {
	// Γ(1)=1, Γ(2)=1, Γ(5)=24.
	cases := []struct{ x, want float64 }{
		{1, 0}, {2, 0}, {5, math.Log(24)}, {0.5, math.Log(math.Sqrt(math.Pi))},
	}
	for _, c := range cases {
		if got := Lgamma(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Lgamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLgammaPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Lgamma(0) did not panic")
		}
	}()
	Lgamma(0)
}

func TestDigammaKnown(t *testing.T) {
	const euler = 0.5772156649015329
	// ψ(1) = −γ, ψ(2) = 1−γ, ψ(0.5) = −γ − 2 ln 2.
	cases := []struct{ x, want float64 }{
		{1, -euler},
		{2, 1 - euler},
		{0.5, -euler - 2*math.Ln2},
		{10, 2.251752589066721},
	}
	for _, c := range cases {
		if got := Digamma(c.x); !almostEq(got, c.want, 1e-10) {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Property: ψ(x+1) = ψ(x) + 1/x (the recurrence relation).
func TestDigammaRecurrence(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Abs(raw)/1e3 + 0.01 // keep in a sane positive range
		return almostEq(Digamma(x+1), Digamma(x)+1/x, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ψ is the derivative of log Γ (finite-difference check).
func TestDigammaMatchesLgammaDerivative(t *testing.T) {
	for _, x := range []float64{0.3, 1.0, 2.5, 7.0, 42.0} {
		h := 1e-6 * x
		fd := (Lgamma(x+h) - Lgamma(x-h)) / (2 * h)
		if !almostEq(Digamma(x), fd, 1e-5) {
			t.Errorf("Digamma(%v)=%v, finite-diff=%v", x, Digamma(x), fd)
		}
	}
}

func TestLogBeta(t *testing.T) {
	// B(1,1)=1, B(2,3)=1/12.
	if got := LogBeta(1, 1); !almostEq(got, 0, 1e-12) {
		t.Errorf("LogBeta(1,1) = %v, want 0", got)
	}
	if got := LogBeta(2, 3); !almostEq(got, math.Log(1.0/12), 1e-12) {
		t.Errorf("LogBeta(2,3) = %v, want log(1/12)", got)
	}
}

func TestLogMultiBetaReducesToLogBeta(t *testing.T) {
	if got, want := LogMultiBeta([]float64{2, 3}), LogBeta(2, 3); !almostEq(got, want, 1e-12) {
		t.Errorf("LogMultiBeta = %v, want %v", got, want)
	}
}

func TestBetaPDFIntegratesToOne(t *testing.T) {
	for _, p := range [][2]float64{{1, 1}, {2, 5}, {0.5, 0.5}, {3, 3}} {
		n := 20000
		s := 0.0
		for i := 0; i < n; i++ {
			tt := (float64(i) + 0.5) / float64(n)
			s += BetaPDF(tt, p[0], p[1])
		}
		s /= float64(n)
		if !almostEq(s, 1, 2e-2) {
			t.Errorf("Beta(%v,%v) integral = %v, want ~1", p[0], p[1], s)
		}
	}
}

func TestBetaLogPDFClampsEndpoints(t *testing.T) {
	if v := BetaLogPDF(0, 2, 2); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("BetaLogPDF(0,...) = %v, want finite", v)
	}
	if v := BetaLogPDF(1, 2, 2); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("BetaLogPDF(1,...) = %v, want finite", v)
	}
}

func TestFitBetaMomentsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		a := 0.5 + rng.Float64()*5
		b := 0.5 + rng.Float64()*5
		mean := a / (a + b)
		variance := a * b / ((a + b) * (a + b) * (a + b + 1))
		ga, gb := FitBetaMoments(mean, variance)
		if !almostEq(ga, a, 1e-6*a+1e-9) || !almostEq(gb, b, 1e-6*b+1e-9) {
			t.Errorf("FitBetaMoments round trip: got (%v,%v), want (%v,%v)", ga, gb, a, b)
		}
	}
}

func TestFitBetaMomentsDegenerate(t *testing.T) {
	cases := []struct{ mean, variance float64 }{
		{0.5, 0}, {0.5, 1}, {0, 0.1}, {1, 0.1}, {0.3, 0.3}, // var ≥ m(1−m)
	}
	for _, c := range cases {
		a, b := FitBetaMoments(c.mean, c.variance)
		if a <= 0 || b <= 0 || math.IsNaN(a) || math.IsNaN(b) {
			t.Errorf("FitBetaMoments(%v,%v) = (%v,%v): invalid", c.mean, c.variance, a, b)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp([]float64{0, 0}); !almostEq(got, math.Ln2, 1e-12) {
		t.Errorf("LSE(0,0) = %v, want ln 2", got)
	}
	if got := LogSumExp([]float64{-1000, -1000}); !almostEq(got, -1000+math.Ln2, 1e-9) {
		t.Errorf("LSE underflow case = %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LSE(empty) = %v, want -Inf", got)
	}
	inf := math.Inf(-1)
	if got := LogSumExp([]float64{inf, inf}); !math.IsInf(got, -1) {
		t.Errorf("LSE(-Inf,-Inf) = %v, want -Inf", got)
	}
}

// Property: LSE(x + c) = LSE(x) + c (shift invariance).
func TestLogSumExpShiftInvariance(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.Abs(a) > 500 || math.Abs(b) > 500 || math.Abs(c) > 500 {
			return true
		}
		lhs := LogSumExp([]float64{a + c, b + c})
		rhs := LogSumExp([]float64{a, b}) + c
		return almostEq(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
