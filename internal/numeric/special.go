// Package numeric provides the dense numerical substrate for PQS-DA:
// vector helpers, special functions (log-gamma ratios, digamma, Beta
// densities), a method-of-moments Beta fitter for the UPM's temporal
// distributions (paper Eqs. 28–29) and a limited-memory BFGS optimizer
// for the UPM hyperparameter updates (paper Eqs. 25–27).
package numeric

import (
	"fmt"
	"math"
)

// Lgamma returns log Γ(x) for x > 0. It panics on non-positive input,
// which in this codebase always indicates a broken count or prior.
func Lgamma(x float64) float64 {
	if x <= 0 {
		panic(fmt.Sprintf("numeric: Lgamma of non-positive %v", x))
	}
	v, _ := math.Lgamma(x)
	return v
}

// Digamma returns ψ(x) = d/dx log Γ(x) for x > 0, via the standard
// recurrence-plus-asymptotic-series method (accurate to ~1e-12 for the
// ranges topic-model hyperparameters live in).
func Digamma(x float64) float64 {
	if x <= 0 {
		panic(fmt.Sprintf("numeric: Digamma of non-positive %v", x))
	}
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic series ψ(x) ≈ ln x − 1/(2x) − Σ B₂ₙ/(2n·x^{2n}).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2/132))))
	return result
}

// LogBeta returns log B(a, b) = log Γ(a) + log Γ(b) − log Γ(a+b).
func LogBeta(a, b float64) float64 {
	return Lgamma(a) + Lgamma(b) - Lgamma(a+b)
}

// LogMultiBeta returns the log of the multidimensional Beta function
// B(v) = Π Γ(vᵢ) / Γ(Σ vᵢ), the normalizer of the Dirichlet distribution.
// This appears in the UPM preference score (paper Eq. 31).
func LogMultiBeta(v []float64) float64 {
	sum := 0.0
	lg := 0.0
	for _, x := range v {
		sum += x
		lg += Lgamma(x)
	}
	return lg - Lgamma(sum)
}

// BetaLogPDF returns the log density of Beta(a, b) at t ∈ (0, 1).
// Endpoints are clamped to avoid −Inf in timestamp likelihoods (the UPM
// rescales timestamps into (0,1) but test sets can touch the bounds).
func BetaLogPDF(t, a, b float64) float64 {
	const eps = 1e-9
	if t < eps {
		t = eps
	}
	if t > 1-eps {
		t = 1 - eps
	}
	return (a-1)*math.Log(t) + (b-1)*math.Log(1-t) - LogBeta(a, b)
}

// BetaPDF returns the density of Beta(a, b) at t.
func BetaPDF(t, a, b float64) float64 { return math.Exp(BetaLogPDF(t, a, b)) }

// FitBetaMoments fits Beta parameters by the method of moments from a
// sample mean and biased sample variance, exactly as the paper's
// Eqs. 28–29 prescribe for the UPM's per-topic timestamp distributions:
//
//	τ₁ = m·(m(1−m)/s² − 1),  τ₂ = (1−m)·(m(1−m)/s² − 1).
//
// Degenerate inputs (zero/overlarge variance, mean at the boundary) fall
// back to a flat Beta(1,1)-leaning fit so sampling code never receives
// invalid parameters.
func FitBetaMoments(mean, variance float64) (a, b float64) {
	const eps = 1e-6
	if mean < eps {
		mean = eps
	}
	if mean > 1-eps {
		mean = 1 - eps
	}
	maxVar := mean * (1 - mean)
	if variance <= 0 || variance >= maxVar {
		// Not enough signal: keep the mean but use a gentle concentration.
		c := 2.0
		return mean * c, (1 - mean) * c
	}
	common := mean*(1-mean)/variance - 1
	a = mean * common
	b = (1 - mean) * common
	if a < eps {
		a = eps
	}
	if b < eps {
		b = eps
	}
	return a, b
}

// LogSumExp returns log Σ exp(xᵢ) computed stably. It returns −Inf for an
// empty slice.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	s := 0.0
	for _, v := range x {
		s += math.Exp(v - max)
	}
	return max + math.Log(s)
}
