package numeric

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("numeric: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AXPY computes y ← y + a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("numeric: AXPY length mismatch")
	}
	for i := range y {
		y[i] += a * x[i]
	}
}

// Scale multiplies v by s in place.
func Scale(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// Sum returns Σ vᵢ.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Normalize scales v in place so it sums to 1 and returns the original
// sum. A zero vector is left untouched.
func Normalize(v []float64) float64 {
	s := Sum(v)
	if s != 0 {
		Scale(1/s, v)
	}
	return s
}

// Cosine returns the cosine similarity of a and b, zero when either has
// zero norm.
func Cosine(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CosineSparse returns the cosine similarity of two sparse vectors
// represented as maps from index to weight.
func CosineSparse(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	dot := 0.0
	for k, va := range a {
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	if dot == 0 {
		return 0
	}
	na, nb := 0.0, 0.0
	for _, v := range a {
		na += v * v
	}
	for _, v := range b {
		nb += v * v
	}
	return dot / math.Sqrt(na*nb)
}

// ArgMax returns the index of the largest element, −1 for empty input.
// Ties resolve to the lowest index.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest elements in descending value
// order. Ties resolve to the lower index first. k is clamped to len(v).
func TopK(v []float64, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx[:k]
}

// SampleCategorical draws an index from the (unnormalized, nonnegative)
// weight vector w using rng. It panics when all weights are zero.
func SampleCategorical(rng *rand.Rand, w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 {
			panic(fmt.Sprintf("numeric: negative categorical weight %v", x))
		}
		total += x
	}
	if total <= 0 {
		panic("numeric: SampleCategorical with zero total weight")
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1 // floating-point slack
}

// SampleLogCategorical draws an index proportional to exp(logw) stably.
func SampleLogCategorical(rng *rand.Rand, logw []float64) int {
	lse := LogSumExp(logw)
	if math.IsInf(lse, -1) {
		panic("numeric: SampleLogCategorical with all -Inf weights")
	}
	u := rng.Float64()
	acc := 0.0
	for i, lw := range logw {
		acc += math.Exp(lw - lse)
		if u < acc {
			return i
		}
	}
	return len(logw) - 1
}

// Mean returns the arithmetic mean, zero for empty input.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Variance returns the biased (population) variance, matching the sᵏ² in
// the paper's Eqs. 28–29. It returns zero for fewer than two samples.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 { return append([]float64(nil), v...) }
