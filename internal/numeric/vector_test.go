package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotAndNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Errorf("Dot = %v, want 12", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAXPYScaleSum(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale = %v", y)
	}
	if Sum(y) != 8 {
		t.Errorf("Sum = %v", Sum(y))
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{1, 3}
	if s := Normalize(v); s != 4 {
		t.Errorf("returned sum %v, want 4", s)
	}
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Errorf("normalized = %v", v)
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector was modified")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := Cosine([]float64{2, 2}, []float64{1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("parallel cosine = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero-vector cosine = %v", got)
	}
}

func TestCosineSparse(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2}
	b := map[string]float64{"y": 2, "z": 5}
	want := 4 / (math.Sqrt(5) * math.Sqrt(29))
	if got := CosineSparse(a, b); !almostEq(got, want, 1e-12) {
		t.Errorf("CosineSparse = %v, want %v", got, want)
	}
	if got := CosineSparse(nil, b); got != 0 {
		t.Errorf("empty CosineSparse = %v", got)
	}
	// Symmetry.
	if CosineSparse(a, b) != CosineSparse(b, a) {
		t.Error("CosineSparse not symmetric")
	}
}

func TestArgMaxTopK(t *testing.T) {
	v := []float64{1, 5, 3, 5}
	if got := ArgMax(v); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d", got)
	}
	top := TopK(v, 3)
	if top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Errorf("TopK = %v, want [1 3 2]", top)
	}
	if got := TopK(v, 10); len(got) != 4 {
		t.Errorf("TopK clamped len = %d", len(got))
	}
}

func TestSampleCategoricalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := []float64{1, 3, 0, 6}
	counts := make([]int, 4)
	n := 100000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(rng, w)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight bucket sampled %d times", counts[2])
	}
	for i, want := range []float64{0.1, 0.3, 0, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bucket %d freq = %v, want %v", i, got, want)
		}
	}
}

func TestSampleCategoricalPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v did not panic", w)
				}
			}()
			SampleCategorical(rng, w)
		}()
	}
}

func TestSampleLogCategoricalAgrees(t *testing.T) {
	rng1 := rand.New(rand.NewSource(10))
	rng2 := rand.New(rand.NewSource(10))
	w := []float64{0.2, 0.5, 0.3}
	logw := []float64{math.Log(0.2), math.Log(0.5), math.Log(0.3)}
	for i := 0; i < 1000; i++ {
		if SampleCategorical(rng1, w) != SampleLogCategorical(rng2, logw) {
			t.Fatal("log and linear samplers diverge under identical rng streams")
		}
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if got := Mean(v); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(v); !almostEq(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25 (biased)", got)
	}
	if Variance([]float64{7}) != 0 {
		t.Error("single-sample variance should be 0")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestFillClone(t *testing.T) {
	v := make([]float64, 3)
	Fill(v, 2)
	c := Clone(v)
	c[0] = 9
	if v[0] != 2 {
		t.Error("Clone aliases input")
	}
}

// Property: cosine is bounded in [−1, 1].
func TestPropertyCosineBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		c := Cosine(a, b)
		return c >= -1-1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TopK returns indices in non-increasing value order.
func TestPropertyTopKSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(n)
		top := TopK(v, k)
		for i := 1; i < len(top); i++ {
			if v[top[i-1]] < v[top[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
