package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestLBFGSQuadratic(t *testing.T) {
	// f(x) = Σ i·(xᵢ − i)², minimum at xᵢ = i.
	n := 10
	f := func(x, g []float64) float64 {
		v := 0.0
		for i := range x {
			c := float64(i + 1)
			d := x[i] - c
			v += c * d * d
			g[i] = 2 * c * d
		}
		return v
	}
	x0 := make([]float64, n)
	x, fx, err := LBFGS{}.Minimize(f, x0)
	if err != nil {
		t.Fatal(err)
	}
	if fx > 1e-10 {
		t.Errorf("final value %v, want ~0", fx)
	}
	for i := range x {
		if !almostEq(x[i], float64(i+1), 1e-5) {
			t.Errorf("x[%d] = %v, want %d", i, x[i], i+1)
		}
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	f := func(x, g []float64) float64 {
		a, b := x[0], x[1]
		g[0] = -2*(1-a) - 400*a*(b-a*a)
		g[1] = 200 * (b - a*a)
		return (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	}
	x, fx, err := LBFGS{MaxIter: 500}.Minimize(f, []float64{-1.2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if fx > 1e-8 || !almostEq(x[0], 1, 1e-3) || !almostEq(x[1], 1, 1e-3) {
		t.Errorf("Rosenbrock: x = %v, f = %v", x, fx)
	}
}

func TestLBFGSAlreadyAtMinimum(t *testing.T) {
	f := func(x, g []float64) float64 {
		g[0] = 2 * x[0]
		return x[0] * x[0]
	}
	x, fx, err := LBFGS{}.Minimize(f, []float64{0})
	if err != nil || fx != 0 || x[0] != 0 {
		t.Errorf("x=%v f=%v err=%v", x, fx, err)
	}
}

func TestMaximizePositiveDirichletMLE(t *testing.T) {
	// Maximize a Dirichlet-multinomial log-likelihood in α — the exact
	// functional form of the paper's Eq. 25. Synthetic counts from a known
	// α should recover hyperparameters that increase the likelihood over
	// the starting point and stay positive.
	rng := rand.New(rand.NewSource(21))
	const K = 4
	const D = 50
	trueAlpha := []float64{0.5, 1.5, 3.0, 0.8}
	counts := make([][]float64, D)
	for d := range counts {
		counts[d] = make([]float64, K)
		// Sample θ ~ Dir(trueAlpha) via Gamma draws, then 100 categorical draws.
		theta := make([]float64, K)
		for k := range theta {
			theta[k] = gammaSample(rng, trueAlpha[k])
		}
		Normalize(theta)
		for i := 0; i < 100; i++ {
			counts[d][SampleCategorical(rng, theta)]++
		}
	}
	ll := func(alpha, grad []float64) float64 {
		v := 0.0
		sumA := Sum(alpha)
		for k := range grad {
			grad[k] = 0
		}
		for d := 0; d < D; d++ {
			nd := Sum(counts[d])
			v += Lgamma(sumA) - Lgamma(sumA+nd)
			for k := 0; k < K; k++ {
				v += Lgamma(alpha[k]+counts[d][k]) - Lgamma(alpha[k])
				grad[k] += Digamma(alpha[k]+counts[d][k]) - Digamma(alpha[k]) +
					Digamma(sumA) - Digamma(sumA+nd)
			}
		}
		return v
	}
	start := []float64{1, 1, 1, 1}
	g0 := make([]float64, K)
	f0 := ll(start, g0)
	alpha, f1, _ := LBFGS{MaxIter: 200}.MaximizePositive(ll, start)
	if f1 < f0 {
		t.Errorf("likelihood decreased: %v -> %v", f0, f1)
	}
	for k, a := range alpha {
		if a <= 0 {
			t.Errorf("alpha[%d] = %v, must stay positive", k, a)
		}
	}
	// Recovered α should be ordered like the truth (3.0 largest, 0.5 smallest).
	if ArgMax(alpha) != 2 {
		t.Errorf("largest recovered alpha at %d, want 2 (alpha=%v)", ArgMax(alpha), alpha)
	}
}

func TestMaximizePositiveRejectsNonPositiveStart(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive start")
		}
	}()
	LBFGS{}.MaximizePositive(func(x, g []float64) float64 { return 0 }, []float64{0})
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia–Tsang; good enough
// for test data.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
