// Package topicmodel implements the generative models the paper's
// Section V and Fig. 4 evaluate: the proposed User Profiling Model (UPM)
// and the baselines LDA, TOT, PTM1, PTM2, MWM, TUM, CTM and SSTM. All
// models share one corpus format — per-user documents made of sessions
// of query events (words plus optional clicked URL) with normalized
// timestamps — and one held-out perplexity protocol (Eq. 35).
package topicmodel

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
)

// QueryEvent is a single log entry inside a session: the query's word
// tokens and the clicked URL token (NoURL when the user did not click).
type QueryEvent struct {
	Words []int
	URL   int
}

// NoURL marks a query event without a click.
const NoURL = -1

// Session is one search session inside a user document, with a
// timestamp normalized into [0, 1] over the log's time span.
type Session struct {
	Events []QueryEvent
	Time   float64
}

// Words returns all word tokens of the session in order.
func (s Session) Words() []int {
	var out []int
	for _, e := range s.Events {
		out = append(out, e.Words...)
	}
	return out
}

// URLs returns all clicked URL tokens of the session in order.
func (s Session) URLs() []int {
	var out []int
	for _, e := range s.Events {
		if e.URL != NoURL {
			out = append(out, e.URL)
		}
	}
	return out
}

// Document is one user's search history.
type Document struct {
	UserID   string
	Sessions []Session
}

// NumWords returns the total word-token count of the document.
func (d Document) NumWords() int {
	n := 0
	for _, s := range d.Sessions {
		for _, e := range s.Events {
			n += len(e.Words)
		}
	}
	return n
}

// Corpus is a collection of user documents over shared word and URL
// vocabularies.
type Corpus struct {
	Docs  []Document
	Words *bipartite.Index
	URLs  *bipartite.Index
	// TimeMin and TimeMax record the absolute time range the [0,1]
	// session timestamps were normalized over, so later fold-in data
	// can be mapped consistently. Zero values mean unknown.
	TimeMin, TimeMax time.Time
}

// NormTime maps an absolute timestamp into the corpus's [0,1] span,
// clamping outside values; 0.5 when the span is unknown or empty.
func (c *Corpus) NormTime(t time.Time) float64 {
	if c.TimeMin.IsZero() || !c.TimeMax.After(c.TimeMin) {
		return 0.5
	}
	x := t.Sub(c.TimeMin).Seconds() / c.TimeMax.Sub(c.TimeMin).Seconds()
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// V returns the word vocabulary size.
func (c *Corpus) V() int { return c.Words.Len() }

// U returns the URL vocabulary size.
func (c *Corpus) U() int { return c.URLs.Len() }

// TotalWords returns the corpus-wide word-token count.
func (c *Corpus) TotalWords() int {
	n := 0
	for _, d := range c.Docs {
		n += d.NumWords()
	}
	return n
}

// BuildCorpus assembles a corpus from sessionized query-log data. One
// document is created per user, in the user order of the sessions.
// normTime maps absolute timestamps into [0,1]; pass nil to derive the
// range from the sessions themselves.
func BuildCorpus(sessions []querylog.Session, normTime func(time.Time) float64) *Corpus {
	c := &Corpus{
		Words: bipartite.NewIndex(),
		URLs:  bipartite.NewIndex(),
	}
	var minT, maxT time.Time
	for _, s := range sessions {
		for _, e := range s.Entries {
			if minT.IsZero() || e.Time.Before(minT) {
				minT = e.Time
			}
			if maxT.IsZero() || e.Time.After(maxT) {
				maxT = e.Time
			}
		}
	}
	c.TimeMin, c.TimeMax = minT, maxT
	if normTime == nil {
		normTime = c.NormTime
	}
	docOf := make(map[string]int)
	for _, s := range sessions {
		di, ok := docOf[s.UserID]
		if !ok {
			di = len(c.Docs)
			docOf[s.UserID] = di
			c.Docs = append(c.Docs, Document{UserID: s.UserID})
		}
		sess := Session{Time: normTime(s.Entries[0].Time)}
		for _, e := range s.Entries {
			ev := QueryEvent{URL: NoURL}
			for _, w := range querylog.Tokenize(e.Query) {
				ev.Words = append(ev.Words, c.Words.Intern(w))
			}
			if e.ClickedURL != "" {
				ev.URL = c.URLs.Intern(e.ClickedURL)
			}
			if len(ev.Words) > 0 || ev.URL != NoURL {
				sess.Events = append(sess.Events, ev)
			}
		}
		if len(sess.Events) == 0 {
			continue
		}
		c.Docs[di].Sessions = append(c.Docs[di].Sessions, sess)
	}
	return c
}

// SplitPrefix divides the corpus into an observed part (the first
// fraction of each document's sessions, by count) and a held-out part,
// sharing vocabularies with the original — the protocol behind the
// paper's Eq. 35 perplexity. Documents keep their indices; a document
// whose prefix would be empty contributes all sessions to observed and
// none to held-out (nothing to predict for brand-new users).
func (c *Corpus) SplitPrefix(fraction float64) (observed, heldOut *Corpus) {
	if fraction <= 0 {
		fraction = 0.5
	}
	if fraction > 1 {
		fraction = 1
	}
	observed = &Corpus{Words: c.Words, URLs: c.URLs}
	heldOut = &Corpus{Words: c.Words, URLs: c.URLs}
	for _, d := range c.Docs {
		cut := int(float64(len(d.Sessions)) * fraction)
		if cut == 0 {
			cut = len(d.Sessions)
		}
		observed.Docs = append(observed.Docs, Document{UserID: d.UserID, Sessions: d.Sessions[:cut]})
		heldOut.Docs = append(heldOut.Docs, Document{UserID: d.UserID, Sessions: d.Sessions[cut:]})
	}
	return observed, heldOut
}
