package topicmodel

import (
	"math"
	"math/rand"

	"repro/internal/numeric"
)

// SSTM is the session-based search topic model in the spirit of Jiang &
// Ng (SIGIR 2013, the paper's [35]): every session draws ONE topic that
// generates all of its words and clicked URLs from corpus-wide topic
// multinomials. It captures the session-coherence assumption the UPM
// also uses, but without per-user emission distributions or temporal
// modeling.
type SSTM struct {
	cfg  TrainConfig
	v, u int
	ndk  [][]float64 // sessions of doc d on topic k
	nkw  [][]float64
	nk   []float64
	nku  [][]float64
	nkuS []float64
	ndS  []float64
}

// TrainSSTM fits the session topic model by collapsed Gibbs sampling
// over session-level topic assignments.
func TrainSSTM(c *Corpus, cfg TrainConfig) *SSTM {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &SSTM{cfg: cfg, v: c.V(), u: c.U()}
	m.ndk = make([][]float64, len(c.Docs))
	m.ndS = make([]float64, len(c.Docs))
	for d := range m.ndk {
		m.ndk[d] = make([]float64, cfg.K)
	}
	m.nkw = make([][]float64, cfg.K)
	m.nk = make([]float64, cfg.K)
	m.nku = make([][]float64, cfg.K)
	m.nkuS = make([]float64, cfg.K)
	for k := 0; k < cfg.K; k++ {
		m.nkw[k] = make([]float64, m.v)
		m.nku[k] = make([]float64, m.u)
	}

	z := make([][]int, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([]int, len(doc.Sessions))
		for s, sess := range doc.Sessions {
			k := rng.Intn(cfg.K)
			z[d][s] = k
			m.addSession(d, k, sess, 1)
		}
	}
	logw := make([]float64, cfg.K)
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range c.Docs {
			for s, sess := range doc.Sessions {
				old := z[d][s]
				m.addSession(d, old, sess, -1)
				for k := 0; k < cfg.K; k++ {
					logw[k] = m.sessionLogWeight(d, k, sess)
				}
				k := numeric.SampleLogCategorical(rng, logw)
				z[d][s] = k
				m.addSession(d, k, sess, 1)
			}
		}
	}
	return m
}

// sessionLogWeight is the collapsed conditional for assigning the whole
// session to topic k: the doc-mixture factor times the sequential
// predictive probability of all its words and URLs under topic k.
func (m *SSTM) sessionLogWeight(d, k int, sess Session) float64 {
	lw := math.Log(m.ndk[d][k] + m.cfg.Alpha)
	wSum := m.nk[k]
	bumpW := make(map[int]float64)
	for _, w := range sess.Words() {
		lw += math.Log((m.nkw[k][w] + bumpW[w] + m.cfg.Beta) / (wSum + m.cfg.Beta*float64(m.v)))
		bumpW[w]++
		wSum++
	}
	uSum := m.nkuS[k]
	bumpU := make(map[int]float64)
	for _, u := range sess.URLs() {
		lw += math.Log((m.nku[k][u] + bumpU[u] + m.cfg.Delta) / (uSum + m.cfg.Delta*float64(m.u)))
		bumpU[u]++
		uSum++
	}
	return lw
}

func (m *SSTM) addSession(d, k int, sess Session, delta float64) {
	m.ndk[d][k] += delta
	m.ndS[d] += delta
	for _, w := range sess.Words() {
		m.nkw[k][w] += delta
		m.nk[k] += delta
	}
	for _, u := range sess.URLs() {
		m.nku[k][u] += delta
		m.nkuS[k] += delta
	}
}

// Name implements Model.
func (m *SSTM) Name() string { return "SSTM" }

// K implements Model.
func (m *SSTM) K() int { return m.cfg.K }

// Theta returns the smoothed document–topic distribution (over session
// assignments).
func (m *SSTM) Theta(d int) []float64 {
	theta := make([]float64, m.cfg.K)
	denom := m.ndS[d] + m.cfg.Alpha*float64(m.cfg.K)
	for k := range theta {
		theta[k] = (m.ndk[d][k] + m.cfg.Alpha) / denom
	}
	return theta
}

// PredictiveWordProb implements Model.
func (m *SSTM) PredictiveWordProb(d, w int) float64 {
	if d >= len(m.ndk) || w >= m.v {
		return 1e-12
	}
	return mixturePredictive(m.Theta(d), func(k int) float64 {
		return (m.nkw[k][w] + m.cfg.Beta) / (m.nk[k] + m.cfg.Beta*float64(m.v))
	})
}
