package topicmodel

import (
	"math"
	"testing"
)

func trainedUPM(t *testing.T, c *Corpus) *UPM {
	t.Helper()
	return TrainUPM(c, UPMConfig{K: 5, Iterations: 40, Seed: 2, HyperRounds: 1, HyperIters: 8})
}

func TestUPMThetaIsDistribution(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	for d := 0; d < m.NumDocs(); d++ {
		theta := m.Theta(d)
		if len(theta) != m.K() {
			t.Fatalf("theta len %d", len(theta))
		}
		sum := 0.0
		for _, p := range theta {
			if p <= 0 {
				t.Fatalf("doc %d: nonpositive theta %v", d, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("doc %d: theta sums to %v", d, sum)
		}
	}
}

func TestUPMWordAndURLProbsNormalize(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	for _, d := range []int{0, m.NumDocs() - 1} {
		for k := 0; k < m.K(); k++ {
			sw := 0.0
			for w := 0; w < c.V(); w++ {
				sw += m.WordProb(d, k, w)
			}
			if math.Abs(sw-1) > 1e-6 {
				t.Errorf("Σ_w WordProb(d=%d,k=%d) = %v", d, k, sw)
			}
			su := 0.0
			for u := 0; u < c.U(); u++ {
				su += m.URLProb(d, k, u)
			}
			if math.Abs(su-1) > 1e-6 {
				t.Errorf("Σ_u URLProb(d=%d,k=%d) = %v", d, k, su)
			}
		}
	}
}

func TestUPMPriorWordProbNormalizes(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	for k := 0; k < m.K(); k++ {
		s := 0.0
		for w := 0; w < c.V(); w++ {
			s += m.PriorWordProb(k, w)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("Σ_w PriorWordProb(k=%d) = %v", k, s)
		}
	}
}

func TestUPMDocOf(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	for d, doc := range c.Docs {
		got, ok := m.DocOf(doc.UserID)
		if !ok || got != d {
			t.Fatalf("DocOf(%s) = %d,%v; want %d", doc.UserID, got, ok, d)
		}
	}
	if _, ok := m.DocOf("nobody"); ok {
		t.Error("DocOf of unknown user succeeded")
	}
}

func TestUPMTauValid(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	for k := 0; k < m.K(); k++ {
		a, b := m.Tau(k)
		if a <= 0 || b <= 0 || math.IsNaN(a) || math.IsNaN(b) {
			t.Errorf("tau[%d] = (%v, %v)", k, a, b)
		}
	}
}

func TestUPMHyperparametersLearned(t *testing.T) {
	// After optimization the alpha vector should have moved off its
	// symmetric initialization (the synthetic users have skewed topic
	// usage) and stayed positive.
	c := synthCorpus(t)
	m := TrainUPM(c, UPMConfig{K: 5, Iterations: 40, Seed: 2, HyperRounds: 2, HyperIters: 10})
	alpha := m.Alpha()
	const init = 2.0 // the UPMConfig default
	moved := false
	for _, a := range alpha {
		if a <= 0 {
			t.Fatalf("alpha = %v: nonpositive entry", alpha)
		}
		if math.Abs(a-init) > 1e-6 {
			moved = true
		}
	}
	if !moved {
		t.Errorf("alpha = %v never moved from init %v", alpha, init)
	}
}

func TestUPMHyperRoundsDisabled(t *testing.T) {
	c := synthCorpus(t)
	m := TrainUPM(c, UPMConfig{K: 5, Iterations: 20, Seed: 2, HyperRounds: -1})
	const init = 2.0 // the UPMConfig default
	for _, a := range m.Alpha() {
		if a != init {
			t.Fatalf("alpha moved with learning disabled: %v", m.Alpha())
		}
	}
}

// The UPM's personalization claim: a user's own frequent word should get
// a higher predictive probability for that user than for a user who
// never types it, under the same model.
func TestUPMPersonalizedWordPreference(t *testing.T) {
	// Two users, same topic structure, disjoint preferred words inside
	// the shared vocabulary.
	c := &Corpus{Words: newTestIndex(8), URLs: newTestIndex(0)}
	mk := func(uid string, preferred []int) Document {
		doc := Document{UserID: uid}
		for s := 0; s < 10; s++ {
			sess := Session{Time: 0.5}
			ev := QueryEvent{URL: NoURL}
			for i := 0; i < 4; i++ {
				ev.Words = append(ev.Words, preferred[(s+i)%len(preferred)])
			}
			sess.Events = append(sess.Events, ev)
			doc.Sessions = append(doc.Sessions, sess)
		}
		return doc
	}
	c.Docs = append(c.Docs, mk("toyota-fan", []int{0, 1, 2, 3}))
	c.Docs = append(c.Docs, mk("ford-fan", []int{4, 5, 6, 7}))
	m := TrainUPM(c, UPMConfig{K: 2, Iterations: 60, Seed: 5, HyperRounds: 1, HyperIters: 8})
	pToyota0 := m.PredictiveWordProb(0, 0)
	pToyota1 := m.PredictiveWordProb(1, 0)
	if pToyota0 <= pToyota1 {
		t.Errorf("user 0's own word: p=%v for them vs p=%v for the other user", pToyota0, pToyota1)
	}
}

func TestUPMPerplexityBeatsLDAWithPersonalVocab(t *testing.T) {
	// When users have strong private word preferences inside shared
	// topics — exactly the structure the UPM models and LDA cannot —
	// the UPM must achieve lower held-out perplexity.
	c := &Corpus{Words: newTestIndex(12), URLs: newTestIndex(0)}
	prefs := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}
	for u, pref := range prefs {
		doc := Document{UserID: string(rune('a' + u))}
		for s := 0; s < 14; s++ {
			sess := Session{Time: 0.5}
			ev := QueryEvent{URL: NoURL}
			for i := 0; i < 4; i++ {
				ev.Words = append(ev.Words, pref[(s+i)%3])
			}
			sess.Events = append(sess.Events, ev)
			doc.Sessions = append(doc.Sessions, sess)
		}
		c.Docs = append(c.Docs, doc)
	}
	obs, held := c.SplitPrefix(0.7)
	upm := TrainUPM(obs, UPMConfig{K: 2, Iterations: 50, Seed: 6, HyperRounds: 1, HyperIters: 8})
	lda := TrainLDA(obs, TrainConfig{K: 2, Iterations: 50, Seed: 6})
	pu := HeldOutPerplexity(upm, held, len(obs.Docs))
	pl := HeldOutPerplexity(lda, held, len(obs.Docs))
	if pu >= pl {
		t.Errorf("UPM perplexity %v not below LDA %v on personal-vocab corpus", pu, pl)
	}
}
