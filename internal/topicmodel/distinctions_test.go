package topicmodel

import (
	"math"
	"testing"
)

// These tests pin down the STRUCTURAL differences between the nine
// models — the properties that make each baseline a distinct point in
// Fig. 4's comparison rather than a renamed copy.

// couplingCorpus: word w identifies the query; the clicked URL is
// perfectly determined by the query's topic. A model that couples the
// URL to the query's topic (CTM, PTM2) can exploit this; a model
// drawing URL topics independently (TUM) cannot.
func couplingCorpus() *Corpus {
	c := &Corpus{Words: newTestIndex(8), URLs: newTestIndex(4)}
	for d := 0; d < 8; d++ {
		topic := d % 2
		doc := Document{UserID: string(rune('a' + d))}
		for s := 0; s < 10; s++ {
			sess := Session{Time: 0.5}
			// Words 0–3 with URL 0|1 for topic A; words 4–7 with URL 2|3
			// for topic B.
			ev := QueryEvent{
				Words: []int{topic*4 + s%4, topic*4 + (s+1)%4},
				URL:   topic*2 + s%2,
			}
			sess.Events = append(sess.Events, ev)
			doc.Sessions = append(doc.Sessions, sess)
		}
		c.Docs = append(c.Docs, doc)
	}
	return c
}

func TestCTMCouplesQueryAndURLTopics(t *testing.T) {
	c := couplingCorpus()
	m := TrainCTM(c, TrainConfig{K: 2, Iterations: 60, Seed: 2})
	// Under CTM the per-topic URL distributions should separate: the
	// URLs of topic A's queries concentrate in one latent topic.
	// Measure: for each latent topic, URL mass should be lopsided
	// between {0,1} and {2,3}.
	for k := 0; k < 2; k++ {
		a := m.PhiURL(k, 0) + m.PhiURL(k, 1)
		b := m.PhiURL(k, 2) + m.PhiURL(k, 3)
		ratio := math.Max(a, b) / (a + b)
		if ratio < 0.9 {
			t.Errorf("latent topic %d: URL groups not separated (ratio %.2f)", k, ratio)
		}
	}
}

func TestMWMTreatsURLsAsMetaWords(t *testing.T) {
	c := couplingCorpus()
	m := TrainMWM(c, TrainConfig{K: 2, Iterations: 60, Seed: 2})
	// MWM's predictive word distribution must renormalize over REAL
	// words only, despite training on the merged stream.
	for _, d := range []int{0, 1} {
		sum := 0.0
		for w := 0; w < c.V(); w++ {
			sum += m.PredictiveWordProb(d, w)
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("doc %d: word mass %v, want 1 (meta-words must not leak)", d, sum)
		}
	}
}

func TestPTMQueryLevelCoherence(t *testing.T) {
	// Every word of one query shares a topic under PTM; under LDA the
	// tokens may split. Construct queries whose words individually pull
	// to different topics but whose co-occurrence is decisive.
	c := &Corpus{Words: newTestIndex(6), URLs: newTestIndex(0)}
	for d := 0; d < 6; d++ {
		doc := Document{UserID: string(rune('a' + d))}
		topic := d % 2
		for s := 0; s < 8; s++ {
			sess := Session{Time: 0.5}
			sess.Events = append(sess.Events, QueryEvent{
				Words: []int{topic * 3, topic*3 + 1, topic*3 + 2},
				URL:   NoURL,
			})
			doc.Sessions = append(doc.Sessions, sess)
		}
		c.Docs = append(c.Docs, doc)
	}
	m := TrainPTM1(c, TrainConfig{K: 2, Iterations: 60, Alpha: 1, Seed: 3})
	// Document mixtures must be sharply single-topic: a query-level
	// model cannot split a 3-word one-topic query.
	for d := range c.Docs {
		th := m.Theta(d)
		max := math.Max(th[0], th[1])
		if max < 0.9 {
			t.Errorf("doc %d: theta %v not concentrated (query-level assignment should be decisive)", d, th)
		}
	}
}

func TestCTMIgnoresClicklessQueries(t *testing.T) {
	// A corpus where every click belongs to topic-A queries and all
	// topic-B queries are clickless: CTM must train fine and its URL
	// distributions describe only the clicked half.
	c := &Corpus{Words: newTestIndex(6), URLs: newTestIndex(2)}
	doc := Document{UserID: "solo"}
	for s := 0; s < 12; s++ {
		sess := Session{Time: 0.5}
		if s%2 == 0 {
			sess.Events = append(sess.Events, QueryEvent{Words: []int{0, 1}, URL: s % 2})
		} else {
			sess.Events = append(sess.Events, QueryEvent{Words: []int{3, 4}, URL: NoURL})
		}
		doc.Sessions = append(doc.Sessions, sess)
	}
	c.Docs = append(c.Docs, doc)
	m := TrainCTM(c, TrainConfig{K: 2, Iterations: 30, Seed: 4})
	// Words 3,4 never appear in a clicked event; CTM's topics carry
	// only smoothing mass for them, strictly less than for words 0,1.
	seen := m.Phi(0, 0) + m.Phi(1, 0)
	unseen := m.Phi(0, 3) + m.Phi(1, 3)
	if unseen >= seen {
		t.Errorf("clickless word mass %v ≥ clicked word mass %v", unseen, seen)
	}
}

func TestUPMTopWords(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	top := m.TopWords(0, 5)
	if len(top) != 5 {
		t.Fatalf("TopWords returned %d", len(top))
	}
	// Descending by prior probability.
	for i := 1; i < len(top); i++ {
		if m.PriorWordProb(0, top[i-1]) < m.PriorWordProb(0, top[i]) {
			t.Fatal("TopWords not sorted by prior probability")
		}
	}
	// Per-user view exists and is sorted too.
	topFor := m.TopWordsFor(0, 0, 5)
	for i := 1; i < len(topFor); i++ {
		if m.WordProb(0, 0, topFor[i-1]) < m.WordProb(0, 0, topFor[i]) {
			t.Fatal("TopWordsFor not sorted by posterior probability")
		}
	}
}
