package topicmodel

import (
	"math"
	"testing"

	"repro/internal/bipartite"
)

// quickCfg keeps model tests fast.
var quickCfg = TrainConfig{K: 5, Iterations: 30, Beta: 0.1, Delta: 0.1, Seed: 1}

// allModels trains every baseline model on the corpus.
func allModels(t *testing.T, c *Corpus) []Model {
	t.Helper()
	return []Model{
		TrainLDA(c, quickCfg),
		TrainTOT(c, quickCfg),
		TrainPTM1(c, quickCfg),
		TrainPTM2(c, quickCfg),
		TrainMWM(c, quickCfg),
		TrainTUM(c, quickCfg),
		TrainCTM(c, quickCfg),
		TrainSSTM(c, quickCfg),
		TrainUPM(c, UPMConfig{K: 5, Iterations: 30, Seed: 1, HyperRounds: 1, HyperIters: 5}),
	}
}

func TestAllModelsNamesDistinct(t *testing.T) {
	c := synthCorpus(t)
	names := make(map[string]bool)
	for _, m := range allModels(t, c) {
		if names[m.Name()] {
			t.Errorf("duplicate model name %q", m.Name())
		}
		names[m.Name()] = true
		if m.K() != 5 {
			t.Errorf("%s: K = %d, want 5", m.Name(), m.K())
		}
	}
	for _, want := range []string{"LDA", "TOT", "PTM1", "PTM2", "MWM", "TUM", "CTM", "SSTM", "UPM"} {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
	}
}

// Every model's predictive word distribution must be a proper
// distribution over the vocabulary for every document.
func TestAllModelsPredictiveIsDistribution(t *testing.T) {
	c := synthCorpus(t)
	for _, m := range allModels(t, c) {
		for _, d := range []int{0, len(c.Docs) - 1} {
			sum := 0.0
			for w := 0; w < c.V(); w++ {
				p := m.PredictiveWordProb(d, w)
				if p <= 0 || math.IsNaN(p) {
					t.Fatalf("%s: p(w=%d|d=%d) = %v", m.Name(), w, d, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("%s: Σ_w p(w|d=%d) = %v, want 1", m.Name(), d, sum)
			}
		}
	}
}

func TestAllModelsBeatUniformPerplexity(t *testing.T) {
	c := synthCorpus(t)
	obs, held := c.SplitPrefix(0.7)
	uniform := uniformModel{v: c.V()}
	uniformPerp := HeldOutPerplexity(uniform, held, len(obs.Docs))
	for _, m := range []Model{
		TrainLDA(obs, quickCfg),
		TrainSSTM(obs, quickCfg),
		TrainUPM(obs, UPMConfig{K: 5, Iterations: 30, Seed: 1, HyperRounds: 1, HyperIters: 5}),
	} {
		p := HeldOutPerplexity(m, held, len(obs.Docs))
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("%s: perplexity = %v", m.Name(), p)
		}
		if p >= uniformPerp {
			t.Errorf("%s: perplexity %v not below uniform %v", m.Name(), p, uniformPerp)
		}
	}
}

type uniformModel struct{ v int }

func (u uniformModel) Name() string                        { return "uniform" }
func (u uniformModel) K() int                              { return 1 }
func (u uniformModel) PredictiveWordProb(d, w int) float64 { return 1 / float64(u.v) }

func TestHeldOutPerplexityEdgeCases(t *testing.T) {
	c := synthCorpus(t)
	_, held := c.SplitPrefix(0.7)
	// No trained docs → nothing to score.
	if got := HeldOutPerplexity(uniformModel{v: c.V()}, held, 0); !math.IsNaN(got) {
		t.Errorf("perplexity over nothing = %v, want NaN", got)
	}
	// Zero-probability model → +Inf.
	if got := HeldOutPerplexity(zeroModel{}, held, len(held.Docs)); !math.IsInf(got, 1) {
		t.Errorf("zero-prob perplexity = %v, want +Inf", got)
	}
}

type zeroModel struct{}

func (zeroModel) Name() string                        { return "zero" }
func (zeroModel) K() int                              { return 1 }
func (zeroModel) PredictiveWordProb(d, w int) float64 { return 0 }

// LDA must separate two cleanly disjoint topics.
func TestLDARecoversDisjointTopics(t *testing.T) {
	// Vocabulary 0–4 belongs to topic A, 5–9 to topic B; docs use one.
	c := &Corpus{Words: newTestIndex(10), URLs: newTestIndex(0)}
	for d := 0; d < 10; d++ {
		base := (d % 2) * 5
		doc := Document{UserID: string(rune('a' + d))}
		for s := 0; s < 6; s++ {
			sess := Session{Time: 0.5}
			ev := QueryEvent{URL: NoURL}
			for i := 0; i < 5; i++ {
				ev.Words = append(ev.Words, base+(s+i)%5)
			}
			sess.Events = append(sess.Events, ev)
			doc.Sessions = append(doc.Sessions, sess)
		}
		c.Docs = append(c.Docs, doc)
	}
	m := TrainLDA(c, TrainConfig{K: 2, Iterations: 80, Seed: 3})
	// Same-group docs should agree on their dominant topic; cross-group
	// docs should not.
	top := func(d int) int {
		th := m.Theta(d)
		if th[0] > th[1] {
			return 0
		}
		return 1
	}
	if top(0) != top(2) || top(1) != top(3) {
		t.Error("same-topic documents disagree on dominant topic")
	}
	if top(0) == top(1) {
		t.Error("different-topic documents share a dominant topic")
	}
}

// TOT must localize topics in time when word use is time-dependent.
func TestTOTTemporalLocalization(t *testing.T) {
	c := &Corpus{Words: newTestIndex(10), URLs: newTestIndex(0)}
	for d := 0; d < 8; d++ {
		doc := Document{UserID: string(rune('a' + d))}
		for s := 0; s < 8; s++ {
			early := s < 4
			base := 0
			tm := 0.1 + 0.05*float64(s%4)
			if !early {
				base = 5
				tm = 0.8 + 0.04*float64(s%4)
			}
			sess := Session{Time: tm}
			ev := QueryEvent{URL: NoURL}
			for i := 0; i < 4; i++ {
				ev.Words = append(ev.Words, base+(s+i)%5)
			}
			sess.Events = append(sess.Events, ev)
			doc.Sessions = append(doc.Sessions, sess)
		}
		c.Docs = append(c.Docs, doc)
	}
	m := TrainTOT(c, TrainConfig{K: 2, Iterations: 80, Seed: 4})
	mean := func(k int) float64 {
		a, b := m.TopicTime(k)
		return a / (a + b)
	}
	m0, m1 := mean(0), mean(1)
	if math.Abs(m0-m1) < 0.3 {
		t.Errorf("topic time means %v and %v not separated", m0, m1)
	}
}

// newTestIndex builds an index with n placeholder entries.
func newTestIndex(n int) *bipartite.Index {
	ix := bipartite.NewIndex()
	for i := 0; i < n; i++ {
		ix.Intern(string(rune('A' + i)))
	}
	return ix
}
