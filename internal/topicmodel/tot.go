package topicmodel

import (
	"math/rand"

	"repro/internal/numeric"
)

// TOT is the Topics-over-Time model (Wang & McCallum, the paper's
// [29]): LDA extended with a per-topic Beta distribution over
// (normalized) timestamps; each word token's topic must also explain
// the token's timestamp, so topics acquire temporal localization.
type TOT struct {
	*LDA
	// tau[k] = (a, b) of topic k's Beta distribution.
	tau [][2]float64
}

// TrainTOT fits TOT by collapsed Gibbs sampling; the Beta parameters
// are re-estimated by method of moments (the original TOT procedure,
// identical in form to the paper's Eqs. 28–29) after every sweep.
func TrainTOT(c *Corpus, cfg TrainConfig) *TOT {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &TOT{LDA: &LDA{cfg: cfg, v: c.V()}}
	m.LDA.init(c)
	m.tau = make([][2]float64, cfg.K)
	for k := range m.tau {
		m.tau[k] = [2]float64{1, 1} // uniform to start
	}

	z := make([][][]int, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([][]int, len(doc.Sessions))
		for s, sess := range doc.Sessions {
			sessWords := sess.Words()
			z[d][s] = make([]int, len(sessWords))
			for i, w := range sessWords {
				k := rng.Intn(cfg.K)
				z[d][s][i] = k
				m.add(d, k, w, 1)
			}
		}
	}

	weights := make([]float64, cfg.K)
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range c.Docs {
			for s, sess := range doc.Sessions {
				sessWords := sess.Words()
				for i, w := range sessWords {
					old := z[d][s][i]
					m.add(d, old, w, -1)
					for k := 0; k < cfg.K; k++ {
						weights[k] = (m.ndk[d][k] + cfg.Alpha) *
							(m.nkw[k][w] + cfg.Beta) / (m.nk[k] + cfg.Beta*float64(m.v)) *
							numeric.BetaPDF(sess.Time, m.tau[k][0], m.tau[k][1])
					}
					k := numeric.SampleCategorical(rng, weights)
					z[d][s][i] = k
					m.add(d, k, w, 1)
				}
			}
		}
		m.refitBeta(c, z)
	}
	return m
}

// refitBeta re-estimates each topic's Beta parameters from the
// timestamps of its currently assigned tokens (method of moments).
func (m *TOT) refitBeta(c *Corpus, z [][][]int) {
	samples := make([][]float64, m.cfg.K)
	for d, doc := range c.Docs {
		for s, sess := range doc.Sessions {
			for i := range sess.Words() {
				k := z[d][s][i]
				samples[k] = append(samples[k], sess.Time)
			}
		}
	}
	for k := range samples {
		if len(samples[k]) < 2 {
			m.tau[k] = [2]float64{1, 1}
			continue
		}
		a, b := numeric.FitBetaMoments(numeric.Mean(samples[k]), numeric.Variance(samples[k]))
		m.tau[k] = [2]float64{a, b}
	}
}

// Name implements Model.
func (m *TOT) Name() string { return "TOT" }

// TopicTime returns topic k's Beta parameters.
func (m *TOT) TopicTime(k int) (a, b float64) { return m.tau[k][0], m.tau[k][1] }

// TopicTimeDensity returns the density of topic k at normalized time t.
func (m *TOT) TopicTimeDensity(k int, t float64) float64 {
	return numeric.BetaPDF(t, m.tau[k][0], m.tau[k][1])
}
