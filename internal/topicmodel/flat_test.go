package topicmodel

import (
	"math"
	"testing"
)

// flatUPM round-trips a trained model through its flat state image.
func flatUPM(t *testing.T, m *UPM) *UPM {
	t.Helper()
	fm, err := UPMFromState(m.State())
	if err != nil {
		t.Fatal(err)
	}
	return fm
}

// assertUPMParity checks that every serving accessor agrees between two
// models over the full (doc, topic, word, URL) space of the corpus.
func assertUPMParity(t *testing.T, c *Corpus, a, b *UPM) {
	t.Helper()
	if a.K() != b.K() || a.NumDocs() != b.NumDocs() {
		t.Fatalf("shape: K %d/%d docs %d/%d", a.K(), b.K(), a.NumDocs(), b.NumDocs())
	}
	al, bl := a.Alpha(), b.Alpha()
	for k := range al {
		if al[k] != bl[k] {
			t.Fatalf("Alpha[%d]: %v vs %v", k, al[k], bl[k])
		}
		aa, ab := a.Tau(k)
		ba, bb := b.Tau(k)
		if aa != ba || ab != bb {
			t.Fatalf("Tau(%d): %v,%v vs %v,%v", k, aa, ab, ba, bb)
		}
	}
	for _, doc := range c.Docs {
		da, oka := a.DocOf(doc.UserID)
		db, okb := b.DocOf(doc.UserID)
		if !oka || !okb || da != db {
			t.Fatalf("DocOf(%q): %d,%v vs %d,%v", doc.UserID, da, oka, db, okb)
		}
		ta, tb := a.Theta(da), b.Theta(db)
		for k := range ta {
			if ta[k] != tb[k] {
				t.Fatalf("Theta(%d)[%d]: %v vs %v", da, k, ta[k], tb[k])
			}
		}
		for k := 0; k < a.K(); k++ {
			for w := 0; w < c.V(); w++ {
				if pa, pb := a.WordProb(da, k, w), b.WordProb(da, k, w); pa != pb {
					t.Fatalf("WordProb(%d,%d,%d): %v vs %v", da, k, w, pa, pb)
				}
			}
			for u := 0; u < c.U(); u++ {
				if pa, pb := a.URLProb(da, k, u), b.URLProb(da, k, u); pa != pb {
					t.Fatalf("URLProb(%d,%d,%d): %v vs %v", da, k, u, pa, pb)
				}
			}
		}
		for w := 0; w < c.V(); w++ {
			pa, pb := a.PredictiveWordProb(da, w), b.PredictiveWordProb(da, w)
			if math.Abs(pa-pb) > 1e-15 {
				t.Fatalf("PredictiveWordProb(%d,%d): %v vs %v", da, w, pa, pb)
			}
		}
	}
	for k := 0; k < a.K(); k++ {
		for w := 0; w < c.V(); w++ {
			if pa, pb := a.PriorWordProb(k, w), b.PriorWordProb(k, w); pa != pb {
				t.Fatalf("PriorWordProb(%d,%d): %v vs %v", k, w, pa, pb)
			}
		}
		ta, tb := a.TopWords(k, 5), b.TopWords(k, 5)
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("TopWords(%d): %v vs %v", k, ta, tb)
			}
		}
	}
}

func TestUPMFlatRoundTripParity(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	fm := flatUPM(t, m)
	assertUPMParity(t, c, m, fm)
}

func TestUPMFlatStateOfFlatModel(t *testing.T) {
	// State() of an arena-backed model must reproduce the same image.
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	fm := flatUPM(t, m)
	fm2 := flatUPM(t, fm)
	assertUPMParity(t, c, fm, fm2)
}

func TestUPMFlatCloneThaws(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	fm := flatUPM(t, m)
	cl := fm.Clone()
	if cl.flat != nil {
		t.Fatal("clone of a flat model should be thawed")
	}
	assertUPMParity(t, c, fm, cl)
	// Mutating the clone (fold-in) must not disturb the flat original.
	doc := c.Docs[0]
	before := fm.Theta(0)
	cl.FoldIn(doc.UserID, doc.Sessions, 5, 7)
	after := fm.Theta(0)
	for k := range before {
		if before[k] != after[k] {
			t.Fatal("FoldIn on clone mutated the flat original")
		}
	}
}

func TestUPMFlatFoldInMatchesMutable(t *testing.T) {
	// Folding the same sessions into a thawed flat model and into the
	// original mutable model must give identical profiles.
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	fm := flatUPM(t, m)
	sessions := c.Docs[1].Sessions
	d1 := m.Clone()
	d2 := fm.Clone()
	a := d1.FoldIn("brand-new-user", sessions, 10, 3)
	b := d2.FoldIn("brand-new-user", sessions, 10, 3)
	if a != b {
		t.Fatalf("fold-in doc ids differ: %d vs %d", a, b)
	}
	ta, tb := d1.Theta(a), d2.Theta(b)
	for k := range ta {
		if ta[k] != tb[k] {
			t.Fatalf("fold-in theta[%d]: %v vs %v", k, ta[k], tb[k])
		}
	}
}

func TestUPMFromStateRejectsCorrupt(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	mut := []struct {
		name string
		mut  func(st *UPMState)
	}{
		{"zero K", func(st *UPMState) { st.Cfg.K = 0 }},
		{"negative D", func(st *UPMState) { st.D = -1 }},
		{"alpha len", func(st *UPMState) { st.Alpha = st.Alpha[:1] }},
		{"beta len", func(st *UPMState) { st.BetaPrior = st.BetaPrior[:3] }},
		{"tau len", func(st *UPMState) { st.Tau = st.Tau[:1] }},
		{"ndk len", func(st *UPMState) { st.Ndk = append(st.Ndk, 1) }},
		{"csr ptr len", func(st *UPMState) { st.NkwdPtr = st.NkwdPtr[:2] }},
		{"csr ptr start", func(st *UPMState) {
			p := append([]int64(nil), st.NkwdPtr...)
			p[0] = 5
			st.NkwdPtr = p
		}},
		{"csr ptr monotone", func(st *UPMState) {
			p := append([]int64(nil), st.NkwdPtr...)
			p[1] = p[len(p)-1] + 10
			st.NkwdPtr = p
		}},
		{"csr idx bound", func(st *UPMState) {
			ix := append([]int64(nil), st.NkwdIdx...)
			ix[0] = int64(st.V) + 9
			st.NkwdIdx = ix
		}},
		{"csr idx unsorted", func(st *UPMState) {
			ix := append([]int64(nil), st.NkwdIdx...)
			swapped := false
			for r := 0; r+1 < len(st.NkwdPtr); r++ {
				if st.NkwdPtr[r+1]-st.NkwdPtr[r] >= 2 {
					p := st.NkwdPtr[r]
					ix[p], ix[p+1] = ix[p+1], ix[p]
					swapped = true
					break
				}
			}
			if !swapped {
				ix[0] = -1 // negative column: also rejected
			}
			st.NkwdIdx = ix
		}},
		{"csr val len", func(st *UPMState) { st.NkwdVal = st.NkwdVal[:1] }},
		{"doc table", func(st *UPMState) { st.DocTable = st.DocTable[:1] }},
		{"doc count", func(st *UPMState) {
			st.D--
			st.NdkSum = st.NdkSum[:st.D]
			st.Ndk = st.Ndk[:st.D*st.Cfg.K]
			st.NkwdSum = st.NkwdSum[:st.D*st.Cfg.K]
			st.NkudSum = st.NkudSum[:st.D*st.Cfg.K]
			st.NkwdPtr = st.NkwdPtr[:st.D*st.Cfg.K+1]
			nnz := st.NkwdPtr[len(st.NkwdPtr)-1]
			st.NkwdIdx = st.NkwdIdx[:nnz]
			st.NkwdVal = st.NkwdVal[:nnz]
			st.NkudPtr = st.NkudPtr[:st.D*st.Cfg.K+1]
			nnz = st.NkudPtr[len(st.NkudPtr)-1]
			st.NkudIdx = st.NkudIdx[:nnz]
			st.NkudVal = st.NkudVal[:nnz]
		}},
	}
	for _, tc := range mut {
		st := m.State()
		tc.mut(st)
		if _, err := UPMFromState(st); err == nil {
			t.Errorf("%s: accepted corrupt state", tc.name)
		}
	}
}
