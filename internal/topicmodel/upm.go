package topicmodel

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/numeric"
)

// UPM is the paper's User Profiling Model (Section V-A, Algorithm 2):
//
//   - each user document d has a topic mixture θ_d ~ Dir(α);
//   - every SESSION draws one topic z ~ Mult(θ_d) — words and URLs in a
//     session are generated from the same topic;
//   - words come from per-document, per-topic multinomials
//     φ_kd ~ Dir(β_k) and URLs from Ω_kd ~ Dir(δ_k): the priors β_k, δ_k
//     are LEARNED vectors that carry the global topic content (the role
//     LDA's φ plays) while the per-document counts capture each user's
//     idiosyncratic word/URL usage (the "Toyota vs Ford" effect);
//   - session timestamps come from per-topic Beta(τ_k) distributions
//     (web dynamics, as in Topics-over-Time).
//
// Inference alternates collapsed Gibbs sampling of session topics
// (Eq. 23) with hyperparameter optimization of α, β, δ by L-BFGS on the
// complete likelihood (Eqs. 25–27) and method-of-moments Beta updates
// (Eqs. 28–29).
type UPM struct {
	cfg  UPMConfig
	v, u int
	// alpha[k], betaPrior[k][w], deltaPrior[k][u] are the learned
	// hyperparameters.
	alpha      []float64
	betaPrior  [][]float64
	deltaPrior [][]float64
	betaSum    []float64 // Σ_w betaPrior[k][w]
	deltaSum   []float64 // Σ_u deltaPrior[k][u]
	// tau[k] are the per-topic Beta(τ_k1, τ_k2) timestamp parameters.
	tau [][2]float64
	// Counts: sessions per doc-topic; words/URLs per topic-doc.
	ndk     [][]float64         // [d][k] session counts C_dk
	ndkSum  []float64           // sessions per doc
	nkwd    [][]map[int]float64 // [d][k] word counts C_kwd (sparse)
	nkwdSum [][]float64         // [d][k] total word tokens
	nkud    [][]map[int]float64 // [d][k] URL counts C_kud (sparse)
	nkudSum [][]float64         // [d][k] total URL tokens
	docID   map[string]int

	// flat, when non-nil, is the arena-backed read-only form (see
	// flat.go): the map/slice fields above are empty and every serving
	// accessor reads the flat arrays instead. Mutation paths thaw first.
	flat *upmFlat
}

// UPMConfig tunes UPM training.
type UPMConfig struct {
	// K is the topic count (default 10).
	K int
	// Iterations is the number of Gibbs sweeps (default 100).
	Iterations int
	// InitAlpha, InitBeta, InitDelta initialize the hyperparameters
	// (defaults 2, 0.1, 0.1 — user documents have few sessions, so a
	// small α keeps profiles from smearing). They are subsequently
	// learned when HyperRounds > 0.
	InitAlpha, InitBeta, InitDelta float64
	// HyperRounds is how many hyperparameter-optimization rounds are
	// interleaved with sampling (default 2: midway and at the end; 0
	// disables learning, degenerating to fixed symmetric priors).
	HyperRounds int
	// HyperIters bounds each L-BFGS run (default 15).
	HyperIters int
	// Seed drives the sampler.
	Seed int64
	// Workers parallelizes the Gibbs sweep across user documents
	// (default 1 = sequential). Unlike LDA — whose topic–word counts
	// are global, making parallel Gibbs approximate (the paper's [31])
	// — every UPM count structure is per-document, so the per-sweep
	// document loop is EXACTLY parallel given the sweep's fixed
	// hyperparameters. Results are identical for any worker count:
	// every document samples from its own deterministic RNG stream.
	Workers int
}

func (c UPMConfig) withDefaults() UPMConfig {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	if c.InitAlpha <= 0 {
		c.InitAlpha = 2
	}
	if c.InitBeta <= 0 {
		c.InitBeta = 0.1
	}
	if c.InitDelta <= 0 {
		c.InitDelta = 0.1
	}
	if c.HyperRounds < 0 {
		c.HyperRounds = 0
	} else if c.HyperRounds == 0 {
		c.HyperRounds = 2
	}
	if c.HyperIters <= 0 {
		c.HyperIters = 15
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// TrainUPM fits the UPM on the corpus. Sampling parallelizes across
// documents when cfg.Workers > 1 with bit-identical results (every
// document owns an independent RNG stream, and all Gibbs state is
// per-document; hyperparameters are only updated at sweep barriers).
func TrainUPM(c *Corpus, cfg UPMConfig) *UPM {
	cfg = cfg.withDefaults()
	m := newUPM(c, cfg)

	// Per-document RNG streams: the sampling of document d is a pure
	// function of (seed, d, corpus), independent of worker scheduling.
	docRngs := make([]*rand.Rand, len(c.Docs))
	for d := range docRngs {
		docRngs[d] = rand.New(rand.NewSource(cfg.Seed<<20 + int64(d)))
	}

	// Session-level assignments z[d][s].
	z := make([][]int, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([]int, len(doc.Sessions))
		for s, sess := range doc.Sessions {
			k := docRngs[d].Intn(cfg.K)
			z[d][s] = k
			m.addSession(d, k, sess, 1)
		}
	}

	hyperAt := make(map[int]bool)
	for r := 1; r <= cfg.HyperRounds; r++ {
		hyperAt[cfg.Iterations*r/cfg.HyperRounds-1] = true
	}

	sweepDoc := func(d int, logw []float64) {
		doc := c.Docs[d]
		for s, sess := range doc.Sessions {
			old := z[d][s]
			m.addSession(d, old, sess, -1)
			for k := 0; k < cfg.K; k++ {
				logw[k] = m.sessionLogWeight(d, k, sess)
			}
			k := numeric.SampleLogCategorical(docRngs[d], logw)
			z[d][s] = k
			m.addSession(d, k, sess, 1)
		}
	}

	for it := 0; it < cfg.Iterations; it++ {
		if cfg.Workers == 1 || len(c.Docs) < 2*cfg.Workers {
			logw := make([]float64, cfg.K)
			for d := range c.Docs {
				sweepDoc(d, logw)
			}
		} else {
			var wg sync.WaitGroup
			next := int64(-1)
			for w := 0; w < cfg.Workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					logw := make([]float64, cfg.K)
					for {
						d := int(atomic.AddInt64(&next, 1))
						if d >= len(c.Docs) {
							return
						}
						sweepDoc(d, logw)
					}
				}()
			}
			wg.Wait()
		}
		m.refitTau(c, z)
		if hyperAt[it] {
			m.optimizeHyperparameters()
		}
	}
	return m
}

func newUPM(c *Corpus, cfg UPMConfig) *UPM {
	m := &UPM{
		cfg: cfg, v: c.V(), u: c.U(),
		alpha:      make([]float64, cfg.K),
		betaPrior:  make([][]float64, cfg.K),
		deltaPrior: make([][]float64, cfg.K),
		betaSum:    make([]float64, cfg.K),
		deltaSum:   make([]float64, cfg.K),
		tau:        make([][2]float64, cfg.K),
		ndk:        make([][]float64, len(c.Docs)),
		ndkSum:     make([]float64, len(c.Docs)),
		nkwd:       make([][]map[int]float64, len(c.Docs)),
		nkwdSum:    make([][]float64, len(c.Docs)),
		nkud:       make([][]map[int]float64, len(c.Docs)),
		nkudSum:    make([][]float64, len(c.Docs)),
		docID:      make(map[string]int, len(c.Docs)),
	}
	for k := 0; k < cfg.K; k++ {
		m.alpha[k] = cfg.InitAlpha
		m.betaPrior[k] = make([]float64, m.v)
		m.deltaPrior[k] = make([]float64, m.u)
		for w := range m.betaPrior[k] {
			m.betaPrior[k][w] = cfg.InitBeta
		}
		for u := range m.deltaPrior[k] {
			m.deltaPrior[k][u] = cfg.InitDelta
		}
		m.betaSum[k] = cfg.InitBeta * float64(m.v)
		m.deltaSum[k] = cfg.InitDelta * float64(m.u)
		m.tau[k] = [2]float64{1, 1}
	}
	for d, doc := range c.Docs {
		m.docID[doc.UserID] = d
		m.ndk[d] = make([]float64, cfg.K)
		m.nkwd[d] = make([]map[int]float64, cfg.K)
		m.nkwdSum[d] = make([]float64, cfg.K)
		m.nkud[d] = make([]map[int]float64, cfg.K)
		m.nkudSum[d] = make([]float64, cfg.K)
		for k := 0; k < cfg.K; k++ {
			m.nkwd[d][k] = make(map[int]float64)
			m.nkud[d][k] = make(map[int]float64)
		}
	}
	return m
}

func (m *UPM) addSession(d, k int, sess Session, delta float64) {
	m.ndk[d][k] += delta
	m.ndkSum[d] += delta
	for _, w := range sess.Words() {
		m.nkwd[d][k][w] += delta
		if m.nkwd[d][k][w] == 0 {
			delete(m.nkwd[d][k], w)
		}
		m.nkwdSum[d][k] += delta
	}
	for _, u := range sess.URLs() {
		m.nkud[d][k][u] += delta
		if m.nkud[d][k][u] == 0 {
			delete(m.nkud[d][k], u)
		}
		m.nkudSum[d][k] += delta
	}
}

// sessionLogWeight is the collapsed Gibbs conditional (Eq. 23) for
// assigning the session to topic k: the doc-mixture factor, the
// sequential Dirichlet-multinomial probability of the session's words
// under φ_kd (prior β_k), likewise for URLs under Ω_kd (prior δ_k), and
// the Beta timestamp density.
func (m *UPM) sessionLogWeight(d, k int, sess Session) float64 {
	lw := math.Log(m.ndk[d][k] + m.alpha[k])
	wSum := m.nkwdSum[d][k]
	bumpW := make(map[int]float64)
	for _, w := range sess.Words() {
		lw += math.Log((m.nkwd[d][k][w] + bumpW[w] + m.betaPrior[k][w]) / (wSum + m.betaSum[k]))
		bumpW[w]++
		wSum++
	}
	uSum := m.nkudSum[d][k]
	bumpU := make(map[int]float64)
	for _, u := range sess.URLs() {
		lw += math.Log((m.nkud[d][k][u] + bumpU[u] + m.deltaPrior[k][u]) / (uSum + m.deltaSum[k]))
		bumpU[u]++
		uSum++
	}
	lw += numeric.BetaLogPDF(sess.Time, m.tau[k][0], m.tau[k][1])
	return lw
}

// refitTau re-estimates τ_k (Eqs. 28–29) from the timestamps of
// sessions currently on topic k.
func (m *UPM) refitTau(c *Corpus, z [][]int) {
	samples := make([][]float64, m.cfg.K)
	for d, doc := range c.Docs {
		for s := range doc.Sessions {
			k := z[d][s]
			samples[k] = append(samples[k], doc.Sessions[s].Time)
		}
	}
	for k := range samples {
		if len(samples[k]) < 2 {
			m.tau[k] = [2]float64{1, 1}
			continue
		}
		a, b := numeric.FitBetaMoments(numeric.Mean(samples[k]), numeric.Variance(samples[k]))
		m.tau[k] = [2]float64{a, b}
	}
}

// Name implements Model.
func (m *UPM) Name() string { return "UPM" }

// K implements Model.
func (m *UPM) K() int { return m.cfg.K }

// NumDocs returns the number of trained user documents.
func (m *UPM) NumDocs() int {
	if f := m.flat; f != nil {
		return f.d
	}
	return len(m.ndk)
}

// DocOf returns the document index of a user ID.
func (m *UPM) DocOf(userID string) (int, bool) {
	if f := m.flat; f != nil {
		return f.docs.Lookup(userID)
	}
	d, ok := m.docID[userID]
	return d, ok
}

// Theta returns the user's topic profile θ_d (Eq. 30).
func (m *UPM) Theta(d int) []float64 {
	theta := make([]float64, m.cfg.K)
	if f := m.flat; f != nil {
		denom := f.ndkSum[d] + numeric.Sum(f.alpha)
		for k := range theta {
			theta[k] = (f.ndk[d*f.k+k] + f.alpha[k]) / denom
		}
		return theta
	}
	denom := m.ndkSum[d] + numeric.Sum(m.alpha)
	for k := range theta {
		theta[k] = (m.ndk[d][k] + m.alpha[k]) / denom
	}
	return theta
}

// WordProb returns the posterior-mean per-user topic–word probability
// p(w | k, d) = (C_kwd + β_kw) / (C_k·d + Σβ_k): the user's own usage
// smoothed toward the globally learned topic content.
func (m *UPM) WordProb(d, k, w int) float64 {
	if f := m.flat; f != nil {
		r := d*f.k + k
		return (csrAt(f.nkwdPtr, f.nkwdIdx, f.nkwdVal, r, w) + f.betaPrior[k*f.v+w]) /
			(f.nkwdSum[r] + f.betaSum[k])
	}
	return (m.nkwd[d][k][w] + m.betaPrior[k][w]) / (m.nkwdSum[d][k] + m.betaSum[k])
}

// PriorWordProb returns the prior-mean word probability β_kw / Σβ_k —
// the literal B(n+β)/B(β) factor of the paper's Eq. 31 for a
// single-occurrence word.
func (m *UPM) PriorWordProb(k, w int) float64 {
	if f := m.flat; f != nil {
		return f.betaPrior[k*f.v+w] / f.betaSum[k]
	}
	return m.betaPrior[k][w] / m.betaSum[k]
}

// URLProb returns the posterior-mean per-user topic–URL probability.
func (m *UPM) URLProb(d, k, u int) float64 {
	if f := m.flat; f != nil {
		r := d*f.k + k
		return (csrAt(f.nkudPtr, f.nkudIdx, f.nkudVal, r, u) + f.deltaPrior[k*f.u+u]) /
			(f.nkudSum[r] + f.deltaSum[k])
	}
	return (m.nkud[d][k][u] + m.deltaPrior[k][u]) / (m.nkudSum[d][k] + m.deltaSum[k])
}

// Tau returns topic k's Beta timestamp parameters.
func (m *UPM) Tau(k int) (a, b float64) {
	if f := m.flat; f != nil {
		return f.tau[2*k], f.tau[2*k+1]
	}
	return m.tau[k][0], m.tau[k][1]
}

// Alpha returns the learned document-mixture hyperparameters.
func (m *UPM) Alpha() []float64 {
	if f := m.flat; f != nil {
		return numeric.Clone(f.alpha)
	}
	return numeric.Clone(m.alpha)
}

// TopWords returns the n highest-probability word IDs of topic k under
// the LEARNED global prior β_k (the shared topic content), most
// probable first — the standard topic-interpretation view.
func (m *UPM) TopWords(k, n int) []int {
	if f := m.flat; f != nil {
		return numeric.TopK(f.betaPrior[k*f.v:(k+1)*f.v], n)
	}
	return numeric.TopK(m.betaPrior[k], n)
}

// TopWordsFor returns the n words of topic k the USER d emphasizes
// most, by posterior probability — the per-user view of the same topic
// (the "Toyota vs Ford" lens).
func (m *UPM) TopWordsFor(d, k, n int) []int {
	scores := make([]float64, m.v)
	for w := range scores {
		scores[w] = m.WordProb(d, k, w)
	}
	return numeric.TopK(scores, n)
}

// PredictiveWordProb implements Model.
func (m *UPM) PredictiveWordProb(d, w int) float64 {
	if d >= m.NumDocs() || w >= m.v {
		return 1e-12
	}
	theta := m.Theta(d)
	return mixturePredictive(theta, func(k int) float64 { return m.WordProb(d, k, w) })
}
