package topicmodel

import (
	"testing"

	"repro/internal/querylog"
	"repro/internal/synth"
)

func synthSessions(t *testing.T) (*synth.World, []querylog.Session) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 23, NumFacets: 5, NumUsers: 12, SessionsPerUser: 30})
	return w, querylog.Sessionize(w.Log, querylog.SessionizerConfig{})
}

func synthCorpus(t *testing.T) *Corpus {
	t.Helper()
	w, sessions := synthSessions(t)
	return BuildCorpus(sessions, w.NormalizeTime)
}

func TestBuildCorpusStructure(t *testing.T) {
	w, sessions := synthSessions(t)
	c := BuildCorpus(sessions, w.NormalizeTime)
	if len(c.Docs) != 12 {
		t.Fatalf("docs = %d, want 12 (one per user)", len(c.Docs))
	}
	if c.V() == 0 || c.U() == 0 {
		t.Fatal("empty vocabularies")
	}
	if c.TotalWords() == 0 {
		t.Fatal("no word tokens")
	}
	for _, d := range c.Docs {
		if len(d.Sessions) == 0 {
			t.Errorf("user %s has no sessions", d.UserID)
		}
		for _, s := range d.Sessions {
			if s.Time < 0 || s.Time > 1 {
				t.Errorf("session time %v outside [0,1]", s.Time)
			}
			if len(s.Events) == 0 {
				t.Error("empty session kept")
			}
		}
	}
}

func TestBuildCorpusNilNormTime(t *testing.T) {
	_, sessions := synthSessions(t)
	c := BuildCorpus(sessions, nil)
	for _, d := range c.Docs {
		for _, s := range d.Sessions {
			if s.Time < 0 || s.Time > 1 {
				t.Fatalf("derived time %v outside [0,1]", s.Time)
			}
		}
	}
}

func TestSessionWordsURLs(t *testing.T) {
	s := Session{Events: []QueryEvent{
		{Words: []int{1, 2}, URL: 7},
		{Words: []int{3}, URL: NoURL},
	}}
	if got := s.Words(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Words = %v", got)
	}
	if got := s.URLs(); len(got) != 1 || got[0] != 7 {
		t.Errorf("URLs = %v", got)
	}
}

func TestSplitPrefixInvariants(t *testing.T) {
	c := synthCorpus(t)
	obs, held := c.SplitPrefix(0.6)
	if len(obs.Docs) != len(c.Docs) || len(held.Docs) != len(c.Docs) {
		t.Fatal("split changed document count")
	}
	for d := range c.Docs {
		if len(obs.Docs[d].Sessions)+len(held.Docs[d].Sessions) != len(c.Docs[d].Sessions) {
			t.Fatalf("doc %d sessions not partitioned", d)
		}
		if len(obs.Docs[d].Sessions) == 0 {
			t.Errorf("doc %d has empty observed prefix", d)
		}
		// Held-out sessions are the most recent ones.
		if len(held.Docs[d].Sessions) > 0 {
			lastObs := obs.Docs[d].Sessions[len(obs.Docs[d].Sessions)-1].Time
			firstHeld := held.Docs[d].Sessions[0].Time
			if firstHeld < lastObs-1e-9 {
				t.Errorf("doc %d: held-out starts before observed ends", d)
			}
		}
	}
	// Vocabularies are shared, not copied.
	if obs.Words != c.Words || held.URLs != c.URLs {
		t.Error("split did not share vocabularies")
	}
}

func TestSplitPrefixClamps(t *testing.T) {
	c := synthCorpus(t)
	obs, held := c.SplitPrefix(5)
	for d := range c.Docs {
		if len(held.Docs[d].Sessions) != 0 {
			t.Fatal("fraction > 1 should hold out nothing")
		}
		if len(obs.Docs[d].Sessions) != len(c.Docs[d].Sessions) {
			t.Fatal("fraction > 1 should observe everything")
		}
	}
}

func TestDocumentNumWords(t *testing.T) {
	d := Document{Sessions: []Session{
		{Events: []QueryEvent{{Words: []int{1, 2}, URL: NoURL}}},
		{Events: []QueryEvent{{Words: []int{3}, URL: 0}}},
	}}
	if d.NumWords() != 3 {
		t.Errorf("NumWords = %d", d.NumWords())
	}
}
