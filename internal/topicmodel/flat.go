package topicmodel

import (
	"fmt"
	"sort"

	"repro/internal/arena"
)

// UPMState is the flat, offset-addressed image of a trained UPM's
// serving state — the "concise summary of each user's preference" the
// paper stores offline (Section V-A), laid out so every array can alias
// a snapshot arena directly: dense hyperparameters as row-major slabs,
// the sparse per-(document, topic) word/URL counts as CSR over D*K
// rows, and the user-ID index as a flat arena string table.
//
// All slices are plain numeric arrays: a UPMState can be written to or
// read from a wire section with zero per-element decoding.
type UPMState struct {
	Cfg     UPMConfig
	V, U, D int

	Alpha      []float64 // K
	BetaPrior  []float64 // K*V, row-major: beta[k*V+w]
	DeltaPrior []float64 // K*U, row-major: delta[k*U+u]
	BetaSum    []float64 // K
	DeltaSum   []float64 // K
	Tau        []float64 // 2K: [a_0 b_0 a_1 b_1 ...]

	Ndk     []float64 // D*K session counts C_dk
	NdkSum  []float64 // D
	NkwdSum []float64 // D*K
	NkudSum []float64 // D*K

	// Sparse counts: CSR over rows r = d*K + k, column ids sorted
	// ascending within each row.
	NkwdPtr []int64 // D*K+1
	NkwdIdx []int64 // word ids
	NkwdVal []float64
	NkudPtr []int64 // D*K+1
	NkudIdx []int64 // URL ids
	NkudVal []float64

	// User-ID index (doc d -> userID) as a flat arena string table.
	DocOffsets []uint64
	DocBlob    []byte
	DocTable   []uint32
}

// upmFlat is the arena-backed serving form of a UPM: every array may
// alias a read-only (possibly mmap'd) snapshot buffer, so nothing here
// is ever written. Mutation paths (Clone, FoldIn) thaw into the
// map-backed form first.
type upmFlat struct {
	k, v, u, d int

	alpha, betaPrior, deltaPrior, betaSum, deltaSum []float64
	tau                                             []float64
	ndk, ndkSum, nkwdSum, nkudSum                   []float64

	nkwdPtr, nkwdIdx []int64
	nkwdVal          []float64
	nkudPtr, nkudIdx []int64
	nkudVal          []float64

	docs *arena.Strings
}

// csrAt returns the count stored at column j of CSR row r (0 when
// absent). Column ids are sorted, so this is a binary search — the flat
// replacement for the map lookup `nkwd[d][k][w]`.
func csrAt(ptr, idx []int64, val []float64, r, j int) float64 {
	lo, hi := ptr[r], ptr[r+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if idx[mid] < int64(j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < ptr[r+1] && idx[lo] == int64(j) {
		return val[lo]
	}
	return 0
}

// State flattens the model's serving state into a UPMState. Works on
// either backing; for an already-flat model the returned slices alias
// the model's (read-only) arrays.
func (m *UPM) State() *UPMState {
	if f := m.flat; f != nil {
		return &UPMState{
			Cfg: m.cfg, V: f.v, U: f.u, D: f.d,
			Alpha: f.alpha, BetaPrior: f.betaPrior, DeltaPrior: f.deltaPrior,
			BetaSum: f.betaSum, DeltaSum: f.deltaSum, Tau: f.tau,
			Ndk: f.ndk, NdkSum: f.ndkSum, NkwdSum: f.nkwdSum, NkudSum: f.nkudSum,
			NkwdPtr: f.nkwdPtr, NkwdIdx: f.nkwdIdx, NkwdVal: f.nkwdVal,
			NkudPtr: f.nkudPtr, NkudIdx: f.nkudIdx, NkudVal: f.nkudVal,
			DocOffsets: f.docs.Offsets(), DocBlob: f.docs.Blob(), DocTable: f.docs.Table(),
		}
	}
	k, d := m.cfg.K, len(m.ndk)
	st := &UPMState{
		Cfg: m.cfg, V: m.v, U: m.u, D: d,
		Alpha:      append([]float64(nil), m.alpha...),
		BetaSum:    append([]float64(nil), m.betaSum...),
		DeltaSum:   append([]float64(nil), m.deltaSum...),
		BetaPrior:  make([]float64, k*m.v),
		DeltaPrior: make([]float64, k*m.u),
		Tau:        make([]float64, 2*k),
		Ndk:        make([]float64, d*k),
		NdkSum:     append([]float64(nil), m.ndkSum...),
		NkwdSum:    make([]float64, d*k),
		NkudSum:    make([]float64, d*k),
	}
	for kk := 0; kk < k; kk++ {
		copy(st.BetaPrior[kk*m.v:], m.betaPrior[kk])
		copy(st.DeltaPrior[kk*m.u:], m.deltaPrior[kk])
		st.Tau[2*kk], st.Tau[2*kk+1] = m.tau[kk][0], m.tau[kk][1]
	}
	for dd := 0; dd < d; dd++ {
		copy(st.Ndk[dd*k:], m.ndk[dd])
		copy(st.NkwdSum[dd*k:], m.nkwdSum[dd])
		copy(st.NkudSum[dd*k:], m.nkudSum[dd])
	}
	st.NkwdPtr, st.NkwdIdx, st.NkwdVal = flattenCounts(m.nkwd, k)
	st.NkudPtr, st.NkudIdx, st.NkudVal = flattenCounts(m.nkud, k)

	names := make([]string, d)
	for id, dd := range m.docID {
		if dd >= 0 && dd < d {
			names[dd] = id
		}
	}
	st.DocOffsets, st.DocBlob, st.DocTable = arena.BuildStrings(names)
	return st
}

// flattenCounts converts the per-(d, k) sparse count maps into one CSR
// with rows r = d*K + k and sorted column ids.
func flattenCounts(counts [][]map[int]float64, k int) (ptr, idx []int64, val []float64) {
	rows := len(counts) * k
	ptr = make([]int64, rows+1)
	nnz := 0
	for _, doc := range counts {
		for _, mm := range doc {
			nnz += len(mm)
		}
	}
	idx = make([]int64, 0, nnz)
	val = make([]float64, 0, nnz)
	cols := make([]int, 0, 64)
	r := 0
	for _, doc := range counts {
		for kk := 0; kk < k; kk++ {
			mm := doc[kk]
			cols = cols[:0]
			for j := range mm {
				cols = append(cols, j)
			}
			sort.Ints(cols)
			for _, j := range cols {
				idx = append(idx, int64(j))
				val = append(val, mm[j])
			}
			r++
			ptr[r] = int64(len(idx))
		}
	}
	return ptr, idx, val
}

// UPMFromState validates a flat state image and wraps it as an
// arena-backed UPM. Every structural invariant a hostile buffer could
// violate is checked here — array lengths, CSR monotonicity and
// bounds, doc-table shape — so the serving accessors can index without
// panicking. Values (probabilities, counts) are not sanity-checked;
// corruption there is caught by the wire format's checksums.
func UPMFromState(st *UPMState) (*UPM, error) {
	k := st.Cfg.K
	if k <= 0 || st.V < 0 || st.U < 0 || st.D < 0 {
		return nil, fmt.Errorf("topicmodel: flat UPM: bad dims K=%d V=%d U=%d D=%d", k, st.V, st.U, st.D)
	}
	const maxInt = int(^uint(0) >> 1)
	if st.V > 0 && k > maxInt/st.V || st.U > 0 && k > maxInt/st.U || st.D > 0 && k > maxInt/st.D {
		return nil, fmt.Errorf("topicmodel: flat UPM: dimension overflow K=%d V=%d U=%d D=%d", k, st.V, st.U, st.D)
	}
	dk := st.D * k
	for _, c := range []struct {
		name string
		got  int
		want int
	}{
		{"Alpha", len(st.Alpha), k},
		{"BetaPrior", len(st.BetaPrior), k * st.V},
		{"DeltaPrior", len(st.DeltaPrior), k * st.U},
		{"BetaSum", len(st.BetaSum), k},
		{"DeltaSum", len(st.DeltaSum), k},
		{"Tau", len(st.Tau), 2 * k},
		{"Ndk", len(st.Ndk), dk},
		{"NdkSum", len(st.NdkSum), st.D},
		{"NkwdSum", len(st.NkwdSum), dk},
		{"NkudSum", len(st.NkudSum), dk},
	} {
		if c.got != c.want {
			return nil, fmt.Errorf("topicmodel: flat UPM: %s has %d elements, want %d", c.name, c.got, c.want)
		}
	}
	if err := checkCSR("word", st.NkwdPtr, st.NkwdIdx, st.NkwdVal, dk, st.V); err != nil {
		return nil, err
	}
	if err := checkCSR("url", st.NkudPtr, st.NkudIdx, st.NkudVal, dk, st.U); err != nil {
		return nil, err
	}
	docs, err := arena.NewStrings(st.DocOffsets, st.DocBlob, st.DocTable)
	if err != nil {
		return nil, fmt.Errorf("topicmodel: flat UPM doc table: %w", err)
	}
	if docs.Len() != st.D {
		return nil, fmt.Errorf("topicmodel: flat UPM: doc table has %d names, want %d", docs.Len(), st.D)
	}
	return &UPM{
		cfg: st.Cfg, v: st.V, u: st.U,
		flat: &upmFlat{
			k: k, v: st.V, u: st.U, d: st.D,
			alpha: st.Alpha, betaPrior: st.BetaPrior, deltaPrior: st.DeltaPrior,
			betaSum: st.BetaSum, deltaSum: st.DeltaSum, tau: st.Tau,
			ndk: st.Ndk, ndkSum: st.NdkSum, nkwdSum: st.NkwdSum, nkudSum: st.NkudSum,
			nkwdPtr: st.NkwdPtr, nkwdIdx: st.NkwdIdx, nkwdVal: st.NkwdVal,
			nkudPtr: st.NkudPtr, nkudIdx: st.NkudIdx, nkudVal: st.NkudVal,
			docs: docs,
		},
	}, nil
}

func checkCSR(what string, ptr, idx []int64, val []float64, rows, cols int) error {
	if len(ptr) != rows+1 {
		return fmt.Errorf("topicmodel: flat UPM %s counts: %d row pointers, want %d", what, len(ptr), rows+1)
	}
	if ptr[0] != 0 {
		return fmt.Errorf("topicmodel: flat UPM %s counts: ptr[0] = %d", what, ptr[0])
	}
	for r := 0; r < rows; r++ {
		if ptr[r+1] < ptr[r] {
			return fmt.Errorf("topicmodel: flat UPM %s counts: row pointers not monotone at row %d", what, r)
		}
	}
	nnz := ptr[rows]
	if int64(len(idx)) != nnz || int64(len(val)) != nnz {
		return fmt.Errorf("topicmodel: flat UPM %s counts: %d ids / %d values, want %d", what, len(idx), len(val), nnz)
	}
	for r := 0; r < rows; r++ {
		prev := int64(-1)
		for p := ptr[r]; p < ptr[r+1]; p++ {
			j := idx[p]
			if j <= prev || j >= int64(cols) {
				return fmt.Errorf("topicmodel: flat UPM %s counts: bad column %d at row %d (cols=%d)", what, j, r, cols)
			}
			prev = j
		}
	}
	return nil
}

// thaw materializes the mutable map-backed form from the flat arrays,
// copying every value out of the (possibly mmap'd, read-only) arena.
// No-op on an already-mutable model.
func (m *UPM) thaw() {
	f := m.flat
	if f == nil {
		return
	}
	k, d := f.k, f.d
	m.alpha = append([]float64(nil), f.alpha...)
	m.betaSum = append([]float64(nil), f.betaSum...)
	m.deltaSum = append([]float64(nil), f.deltaSum...)
	m.betaPrior = make([][]float64, k)
	m.deltaPrior = make([][]float64, k)
	m.tau = make([][2]float64, k)
	for kk := 0; kk < k; kk++ {
		m.betaPrior[kk] = append([]float64(nil), f.betaPrior[kk*f.v:(kk+1)*f.v]...)
		m.deltaPrior[kk] = append([]float64(nil), f.deltaPrior[kk*f.u:(kk+1)*f.u]...)
		m.tau[kk] = [2]float64{f.tau[2*kk], f.tau[2*kk+1]}
	}
	m.ndk = make([][]float64, d)
	m.ndkSum = append([]float64(nil), f.ndkSum...)
	m.nkwd = make([][]map[int]float64, d)
	m.nkwdSum = make([][]float64, d)
	m.nkud = make([][]map[int]float64, d)
	m.nkudSum = make([][]float64, d)
	for dd := 0; dd < d; dd++ {
		m.ndk[dd] = append([]float64(nil), f.ndk[dd*k:(dd+1)*k]...)
		m.nkwdSum[dd] = append([]float64(nil), f.nkwdSum[dd*k:(dd+1)*k]...)
		m.nkudSum[dd] = append([]float64(nil), f.nkudSum[dd*k:(dd+1)*k]...)
		m.nkwd[dd] = make([]map[int]float64, k)
		m.nkud[dd] = make([]map[int]float64, k)
		for kk := 0; kk < k; kk++ {
			r := dd*k + kk
			m.nkwd[dd][kk] = thawRow(f.nkwdPtr, f.nkwdIdx, f.nkwdVal, r)
			m.nkud[dd][kk] = thawRow(f.nkudPtr, f.nkudIdx, f.nkudVal, r)
		}
	}
	m.docID = make(map[string]int, d)
	for dd := 0; dd < d; dd++ {
		// Copy the name: thawed models must not alias arena memory.
		name := f.docs.Name(dd)
		m.docID[string(append([]byte(nil), name...))] = dd
	}
	m.flat = nil
}

func thawRow(ptr, idx []int64, val []float64, r int) map[int]float64 {
	mm := make(map[int]float64, ptr[r+1]-ptr[r])
	for p := ptr[r]; p < ptr[r+1]; p++ {
		mm[int(idx[p])] = val[p]
	}
	return mm
}

// Clone deep-copies the model: the copy shares no mutable state with
// the original, so FoldIn on one never races with reads of the other.
// Cloning an arena-backed model thaws the copy into the mutable form
// (the original stays flat); the arena itself is never written.
func (m *UPM) Clone() *UPM {
	out := &UPM{cfg: m.cfg, v: m.v, u: m.u}
	if m.flat != nil {
		out.flat = m.flat
		out.thaw()
		return out
	}
	out.alpha = append([]float64(nil), m.alpha...)
	out.betaSum = append([]float64(nil), m.betaSum...)
	out.deltaSum = append([]float64(nil), m.deltaSum...)
	out.betaPrior = make([][]float64, len(m.betaPrior))
	for k := range m.betaPrior {
		out.betaPrior[k] = append([]float64(nil), m.betaPrior[k]...)
	}
	out.deltaPrior = make([][]float64, len(m.deltaPrior))
	for k := range m.deltaPrior {
		out.deltaPrior[k] = append([]float64(nil), m.deltaPrior[k]...)
	}
	out.tau = append([][2]float64(nil), m.tau...)
	out.ndk = make([][]float64, len(m.ndk))
	for d := range m.ndk {
		out.ndk[d] = append([]float64(nil), m.ndk[d]...)
	}
	out.ndkSum = append([]float64(nil), m.ndkSum...)
	out.nkwd = cloneCounts(m.nkwd)
	out.nkud = cloneCounts(m.nkud)
	out.nkwdSum = make([][]float64, len(m.nkwdSum))
	for d := range m.nkwdSum {
		out.nkwdSum[d] = append([]float64(nil), m.nkwdSum[d]...)
	}
	out.nkudSum = make([][]float64, len(m.nkudSum))
	for d := range m.nkudSum {
		out.nkudSum[d] = append([]float64(nil), m.nkudSum[d]...)
	}
	out.docID = make(map[string]int, len(m.docID))
	for id, d := range m.docID {
		out.docID[id] = d
	}
	return out
}

func cloneCounts(counts [][]map[int]float64) [][]map[int]float64 {
	out := make([][]map[int]float64, len(counts))
	for d := range counts {
		out[d] = make([]map[int]float64, len(counts[d]))
		for k, mm := range counts[d] {
			cp := make(map[int]float64, len(mm))
			for j, v := range mm {
				cp[j] = v
			}
			out[d][k] = cp
		}
	}
	return out
}
