package topicmodel

import (
	"math"
	"testing"
)

// The parallel Gibbs sweep must be bit-identical to the sequential one:
// all UPM state is per-document and each document has its own RNG
// stream (see UPMConfig.Workers).
func TestUPMParallelMatchesSequential(t *testing.T) {
	c := synthCorpus(t)
	seq := TrainUPM(c, UPMConfig{K: 5, Iterations: 25, Seed: 3, HyperRounds: 1, HyperIters: 5, Workers: 1})
	par := TrainUPM(c, UPMConfig{K: 5, Iterations: 25, Seed: 3, HyperRounds: 1, HyperIters: 5, Workers: 4})
	for d := 0; d < seq.NumDocs(); d++ {
		ts, tp := seq.Theta(d), par.Theta(d)
		for k := range ts {
			if math.Abs(ts[k]-tp[k]) > 1e-12 {
				t.Fatalf("doc %d topic %d: sequential %v vs parallel %v", d, k, ts[k], tp[k])
			}
		}
	}
	for k := 0; k < seq.K(); k++ {
		for w := 0; w < c.V(); w++ {
			if math.Abs(seq.PriorWordProb(k, w)-par.PriorWordProb(k, w)) > 1e-12 {
				t.Fatalf("learned beta differs at (%d,%d)", k, w)
			}
		}
		as, bs := seq.Tau(k)
		ap, bp := par.Tau(k)
		if as != ap || bs != bp {
			t.Fatalf("tau differs at topic %d", k)
		}
	}
}

// Degenerate worker counts behave.
func TestUPMWorkersEdgeCases(t *testing.T) {
	c := synthCorpus(t)
	for _, workers := range []int{0, 1, 100} {
		m := TrainUPM(c, UPMConfig{K: 3, Iterations: 5, Seed: 1, HyperRounds: -1, Workers: workers})
		if m.NumDocs() != len(c.Docs) {
			t.Fatalf("workers=%d: NumDocs %d", workers, m.NumDocs())
		}
	}
}
