package topicmodel

import (
	"math"
	"testing"
)

func TestFoldInNewUser(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	before := m.NumDocs()

	// Clone an existing user's sessions as a "new" user: their inferred
	// profile should resemble the original's.
	src := 0
	d := m.FoldIn("newcomer", c.Docs[src].Sessions, 30, 99)
	if m.NumDocs() != before+1 {
		t.Fatalf("NumDocs = %d, want %d", m.NumDocs(), before+1)
	}
	if got, ok := m.DocOf("newcomer"); !ok || got != d {
		t.Fatalf("DocOf(newcomer) = %d,%v", got, ok)
	}
	thNew := m.Theta(d)
	thSrc := m.Theta(src)
	sumsTo1 := 0.0
	for _, p := range thNew {
		sumsTo1 += p
	}
	if math.Abs(sumsTo1-1) > 1e-9 {
		t.Fatalf("folded theta sums to %v", sumsTo1)
	}
	// The folded profile should match its source user better than it
	// matches most other users: single-chain Gibbs keeps some sampling
	// noise, so we assert ranking rather than an absolute cosine.
	cos := func(a, b []float64) float64 {
		dot, na, nb := 0.0, 0.0, 0.0
		for k := range a {
			dot += a[k] * b[k]
			na += a[k] * a[k]
			nb += b[k] * b[k]
		}
		return dot / math.Sqrt(na*nb)
	}
	own := cos(thNew, thSrc)
	closer := 0
	for other := 0; other < before; other++ {
		if other == src {
			continue
		}
		if cos(thNew, m.Theta(other)) > own {
			closer++
		}
	}
	if closer > before/4 {
		t.Errorf("folded profile closer to %d/%d other users than to its source (own cosine %.3f)",
			closer, before-1, own)
	}
	// Predictive probabilities behave.
	p := m.PredictiveWordProb(d, 0)
	if p <= 0 || math.IsNaN(p) {
		t.Fatalf("predictive prob %v", p)
	}
}

func TestFoldInReplacesExistingUser(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	before := m.NumDocs()
	user := c.Docs[1].UserID
	d := m.FoldIn(user, c.Docs[2].Sessions, 20, 5)
	if m.NumDocs() != before {
		t.Fatalf("replace grew the doc table: %d vs %d", m.NumDocs(), before)
	}
	if got, _ := m.DocOf(user); got != d {
		t.Fatalf("DocOf changed: %d vs %d", got, d)
	}
}

func TestFoldInOutOfVocabTokens(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	sessions := []Session{{
		Time: 0.5,
		Events: []QueryEvent{
			{Words: []int{c.V() + 5, -3}, URL: c.U() + 9}, // all out of range
			{Words: []int{0}, URL: NoURL},                 // one valid word
		},
	}}
	d := m.FoldIn("oov-user", sessions, 10, 1)
	theta := m.Theta(d)
	sum := 0.0
	for _, p := range theta {
		if p <= 0 {
			t.Fatal("invalid theta after OOV fold-in")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %v", sum)
	}
}

func TestFoldInEmptySessions(t *testing.T) {
	c := synthCorpus(t)
	m := trainedUPM(t, c)
	d := m.FoldIn("ghost", nil, 10, 1)
	// A user with no usable history gets the prior profile.
	theta := m.Theta(d)
	for k := 1; k < len(theta); k++ {
		// With no counts, theta is proportional to alpha.
		want := m.alpha[k] / numericSum(m.alpha)
		if math.Abs(theta[k]-want) > 1e-9 {
			t.Fatalf("empty-history theta[%d] = %v, want prior %v", k, theta[k], want)
		}
	}
}

func numericSum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
