package topicmodel

import (
	"math"
	"math/rand"

	"repro/internal/numeric"
)

// PTM implements the personalization topic models of Carman et al.
// (the paper's [21]) at the granularity their query-log models use: one
// latent topic per QUERY (not per word token), with user documents.
// PTM1 emits only the query's words from the topic; PTM2 additionally
// emits the query's clicked URL from a shared topic–URL distribution.
type PTM struct {
	cfg      TrainConfig
	withURLs bool // false = PTM1, true = PTM2
	v, u     int
	ndk      [][]float64 // queries of doc d on topic k
	nkw      [][]float64 // words on topic k (corpus-wide)
	nk       []float64   // word tokens on topic k
	nku      [][]float64 // URLs on topic k (corpus-wide, PTM2)
	nkuSum   []float64   // URL tokens on topic k (PTM2)
	ndSum    []float64   // query count of doc d
}

// TrainPTM1 fits the words-only query-topic model.
func TrainPTM1(c *Corpus, cfg TrainConfig) *PTM { return trainPTM(c, cfg, false) }

// TrainPTM2 fits the words+URL query-topic model.
func TrainPTM2(c *Corpus, cfg TrainConfig) *PTM { return trainPTM(c, cfg, true) }

func trainPTM(c *Corpus, cfg TrainConfig, withURLs bool) *PTM {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &PTM{cfg: cfg, withURLs: withURLs, v: c.V(), u: c.U()}
	m.ndk = make([][]float64, len(c.Docs))
	m.ndSum = make([]float64, len(c.Docs))
	for d := range m.ndk {
		m.ndk[d] = make([]float64, cfg.K)
	}
	m.nkw = make([][]float64, cfg.K)
	m.nk = make([]float64, cfg.K)
	m.nku = make([][]float64, cfg.K)
	m.nkuSum = make([]float64, cfg.K)
	for k := 0; k < cfg.K; k++ {
		m.nkw[k] = make([]float64, m.v)
		m.nku[k] = make([]float64, m.u)
	}

	// One topic per query event: z[d][s][e].
	z := make([][][]int, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([][]int, len(doc.Sessions))
		for s, sess := range doc.Sessions {
			z[d][s] = make([]int, len(sess.Events))
			for e, ev := range sess.Events {
				k := rng.Intn(cfg.K)
				z[d][s][e] = k
				m.addEvent(d, k, ev, 1)
			}
		}
	}

	logw := make([]float64, cfg.K)
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range c.Docs {
			for s, sess := range doc.Sessions {
				for e, ev := range sess.Events {
					old := z[d][s][e]
					m.addEvent(d, old, ev, -1)
					for k := 0; k < cfg.K; k++ {
						lw := math.Log(m.ndk[d][k] + cfg.Alpha)
						// Sequentially integrate the query's words
						// against the topic's current counts.
						wSum := m.nk[k]
						bump := make(map[int]float64, len(ev.Words))
						for _, w := range ev.Words {
							lw += math.Log((m.nkw[k][w] + bump[w] + cfg.Beta) / (wSum + cfg.Beta*float64(m.v)))
							bump[w]++
							wSum++
						}
						if m.withURLs && ev.URL != NoURL {
							lw += math.Log((m.nku[k][ev.URL] + cfg.Delta) / (m.nkuSum[k] + cfg.Delta*float64(m.u)))
						}
						logw[k] = lw
					}
					k := numeric.SampleLogCategorical(rng, logw)
					z[d][s][e] = k
					m.addEvent(d, k, ev, 1)
				}
			}
		}
	}
	return m
}

func (m *PTM) addEvent(d, k int, ev QueryEvent, delta float64) {
	m.ndk[d][k] += delta
	m.ndSum[d] += delta
	for _, w := range ev.Words {
		m.nkw[k][w] += delta
		m.nk[k] += delta
	}
	if m.withURLs && ev.URL != NoURL {
		m.nku[k][ev.URL] += delta
		m.nkuSum[k] += delta
	}
}

// Name implements Model.
func (m *PTM) Name() string {
	if m.withURLs {
		return "PTM2"
	}
	return "PTM1"
}

// K implements Model.
func (m *PTM) K() int { return m.cfg.K }

// Theta returns the smoothed document–topic distribution.
func (m *PTM) Theta(d int) []float64 {
	theta := make([]float64, m.cfg.K)
	denom := m.ndSum[d] + m.cfg.Alpha*float64(m.cfg.K)
	for k := range theta {
		theta[k] = (m.ndk[d][k] + m.cfg.Alpha) / denom
	}
	return theta
}

// Phi returns the smoothed topic–word probability.
func (m *PTM) Phi(k, w int) float64 {
	return (m.nkw[k][w] + m.cfg.Beta) / (m.nk[k] + m.cfg.Beta*float64(m.v))
}

// PhiURL returns the smoothed topic–URL probability (PTM2).
func (m *PTM) PhiURL(k, u int) float64 {
	return (m.nku[k][u] + m.cfg.Delta) / (m.nkuSum[k] + m.cfg.Delta*float64(m.u))
}

// PredictiveWordProb implements Model.
func (m *PTM) PredictiveWordProb(d, w int) float64 {
	if d >= len(m.ndk) || w >= m.v {
		return 1e-12
	}
	return mixturePredictive(m.Theta(d), func(k int) float64 { return m.Phi(k, w) })
}
