package topicmodel

import (
	"math"
)

// Model is the interface every trained generative model exposes for the
// Fig. 4 perplexity comparison: the per-document predictive word
// distribution p(w | d, trained state).
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// K returns the topic count.
	K() int
	// PredictiveWordProb returns p(word w | document d). Implementations
	// must return a strictly positive probability for any in-vocabulary
	// word (priors smooth unseen words).
	PredictiveWordProb(d, w int) float64
}

// TrainConfig is shared by all trainers.
type TrainConfig struct {
	// K is the topic count (default 10).
	K int
	// Iterations is the number of Gibbs sweeps (default 100).
	Iterations int
	// Alpha and Beta are the symmetric Dirichlet priors for document–
	// topic and topic–word distributions (defaults 50/K and 0.01).
	Alpha, Beta float64
	// Delta is the symmetric prior for topic–URL distributions where a
	// model has them (default 0.01).
	Delta float64
	// Seed drives the sampler.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	if c.Alpha <= 0 {
		c.Alpha = 50 / float64(c.K)
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.Delta <= 0 {
		c.Delta = 0.01
	}
	return c
}

// HeldOutPerplexity computes the paper's Eq. 35: the perplexity of the
// held-out word tokens under the model's per-document predictive
// distribution,
//
//	exp( − Σ_d Σ_i log p(w_i | d) / Σ_d N_d ).
//
// Held-out documents must use the same indices and vocabulary as the
// training corpus. Documents beyond the model's training set are
// skipped. It returns +Inf when the model assigns zero mass to any
// held-out token and NaN when there are no held-out tokens.
func HeldOutPerplexity(m Model, heldOut *Corpus, numTrainedDocs int) float64 {
	logSum := 0.0
	n := 0
	for d, doc := range heldOut.Docs {
		if d >= numTrainedDocs {
			continue
		}
		for _, s := range doc.Sessions {
			for _, w := range s.Words() {
				p := m.PredictiveWordProb(d, w)
				if p <= 0 {
					return math.Inf(1)
				}
				logSum += math.Log(p)
				n++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(-logSum / float64(n))
}

// mixturePredictive computes Σ_k θ[k]·φ[k][w], the standard predictive
// word probability for mixture models.
func mixturePredictive(theta []float64, phiW func(k int) float64) float64 {
	p := 0.0
	for k := range theta {
		p += theta[k] * phiW(k)
	}
	return p
}
