package topicmodel

import (
	"bytes"
	"encoding/gob"
)

// upmWire mirrors UPM for gob: the trained model — hyperparameters,
// temporal parameters and per-user counts — is exactly the "concise
// summary of each user's preference" the paper stores offline for
// online personalization (Section V-A).
type upmWire struct {
	Cfg        UPMConfig
	V, U       int
	Alpha      []float64
	BetaPrior  [][]float64
	DeltaPrior [][]float64
	BetaSum    []float64
	DeltaSum   []float64
	Tau        [][2]float64
	Ndk        [][]float64
	NdkSum     []float64
	Nkwd       [][]map[int]float64
	NkwdSum    [][]float64
	Nkud       [][]map[int]float64
	NkudSum    [][]float64
	DocID      map[string]int
}

// GobEncode implements gob.GobEncoder.
func (m *UPM) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(upmWire{
		Cfg: m.cfg, V: m.v, U: m.u,
		Alpha: m.alpha, BetaPrior: m.betaPrior, DeltaPrior: m.deltaPrior,
		BetaSum: m.betaSum, DeltaSum: m.deltaSum, Tau: m.tau,
		Ndk: m.ndk, NdkSum: m.ndkSum,
		Nkwd: m.nkwd, NkwdSum: m.nkwdSum,
		Nkud: m.nkud, NkudSum: m.nkudSum,
		DocID: m.docID,
	})
	return buf.Bytes(), err
}

// Clone deep-copies the model via its gob wire format: the copy shares
// no mutable state with the original, so FoldIn on one never races with
// reads of the other. This backs the engine's hot-swap refresh path.
func (m *UPM) Clone() *UPM {
	data, err := m.GobEncode()
	if err != nil {
		// The wire format covers every field; encoding a live model
		// cannot fail short of OOM.
		panic("topicmodel: cloning UPM: " + err.Error())
	}
	out := &UPM{}
	if err := out.GobDecode(data); err != nil {
		panic("topicmodel: cloning UPM: " + err.Error())
	}
	return out
}

// GobDecode implements gob.GobDecoder.
func (m *UPM) GobDecode(data []byte) error {
	var w upmWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	m.cfg, m.v, m.u = w.Cfg, w.V, w.U
	m.alpha, m.betaPrior, m.deltaPrior = w.Alpha, w.BetaPrior, w.DeltaPrior
	m.betaSum, m.deltaSum, m.tau = w.BetaSum, w.DeltaSum, w.Tau
	m.ndk, m.ndkSum = w.Ndk, w.NdkSum
	m.nkwd, m.nkwdSum = w.Nkwd, w.NkwdSum
	m.nkud, m.nkudSum = w.Nkud, w.NkudSum
	m.docID = w.DocID
	return nil
}
