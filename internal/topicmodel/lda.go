package topicmodel

import (
	"math/rand"

	"repro/internal/numeric"
)

// LDA is standard Latent Dirichlet Allocation (Blei et al., the paper's
// [19]) trained by collapsed Gibbs sampling at the word-token level,
// with topic–word distributions shared across documents.
type LDA struct {
	cfg TrainConfig
	v   int // vocabulary size
	// ndk[d][k]: tokens of doc d assigned to topic k.
	ndk [][]float64
	// nkw[k][w]: corpus-wide tokens of word w assigned to topic k.
	nkw [][]float64
	// nk[k]: total tokens on topic k.
	nk []float64
	// ndSum[d]: token count of doc d.
	ndSum []float64
}

// TrainLDA fits LDA on the corpus (URLs and timestamps are ignored —
// LDA sees only query words).
func TrainLDA(c *Corpus, cfg TrainConfig) *LDA {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &LDA{cfg: cfg, v: c.V()}
	m.init(c)

	// Token-level assignment state: z[d][s][i].
	z := make([][][]int, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([][]int, len(doc.Sessions))
		for s, sess := range doc.Sessions {
			sessWords := sess.Words()
			z[d][s] = make([]int, len(sessWords))
			for i, w := range sessWords {
				k := rng.Intn(cfg.K)
				z[d][s][i] = k
				m.add(d, k, w, 1)
			}
		}
	}
	weights := make([]float64, cfg.K)
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range c.Docs {
			for s, sess := range doc.Sessions {
				sessWords := sess.Words()
				for i, w := range sessWords {
					old := z[d][s][i]
					m.add(d, old, w, -1)
					for k := 0; k < cfg.K; k++ {
						weights[k] = (m.ndk[d][k] + cfg.Alpha) *
							(m.nkw[k][w] + cfg.Beta) / (m.nk[k] + cfg.Beta*float64(m.v))
					}
					k := numeric.SampleCategorical(rng, weights)
					z[d][s][i] = k
					m.add(d, k, w, 1)
				}
			}
		}
	}
	return m
}

func (m *LDA) init(c *Corpus) {
	m.ndk = make([][]float64, len(c.Docs))
	m.ndSum = make([]float64, len(c.Docs))
	for d := range m.ndk {
		m.ndk[d] = make([]float64, m.cfg.K)
	}
	m.nkw = make([][]float64, m.cfg.K)
	m.nk = make([]float64, m.cfg.K)
	for k := range m.nkw {
		m.nkw[k] = make([]float64, m.v)
	}
}

func (m *LDA) add(d, k, w int, delta float64) {
	m.ndk[d][k] += delta
	m.nkw[k][w] += delta
	m.nk[k] += delta
	m.ndSum[d] += delta
}

// Name implements Model.
func (m *LDA) Name() string { return "LDA" }

// K implements Model.
func (m *LDA) K() int { return m.cfg.K }

// Theta returns the smoothed document–topic distribution of document d.
func (m *LDA) Theta(d int) []float64 {
	theta := make([]float64, m.cfg.K)
	denom := m.ndSum[d] + m.cfg.Alpha*float64(m.cfg.K)
	for k := range theta {
		theta[k] = (m.ndk[d][k] + m.cfg.Alpha) / denom
	}
	return theta
}

// Phi returns the smoothed topic–word probability φ_kw.
func (m *LDA) Phi(k, w int) float64 {
	return (m.nkw[k][w] + m.cfg.Beta) / (m.nk[k] + m.cfg.Beta*float64(m.v))
}

// PredictiveWordProb implements Model.
func (m *LDA) PredictiveWordProb(d, w int) float64 {
	if d >= len(m.ndk) || w >= m.v {
		return 1e-12
	}
	return mixturePredictive(m.Theta(d), func(k int) float64 { return m.Phi(k, w) })
}
