package topicmodel

import (
	"math"

	"repro/internal/numeric"
)

// optimizeHyperparameters runs the paper's Eqs. 25–27: maximize the
// complete log-likelihood in α (document mixtures), each β_k (word
// priors) and each δ_k (URL priors) with L-BFGS, in log-space to keep
// the vectors positive (the paper's L-BFGS-B reference [30]).
func (m *UPM) optimizeHyperparameters() {
	opt := numeric.LBFGS{MaxIter: m.cfg.HyperIters}

	// --- α (Eq. 25): Dirichlet-multinomial over session-topic counts.
	alphaObj := func(alpha, grad []float64) float64 {
		v := 0.0
		sumA := numeric.Sum(alpha)
		for k := range grad {
			grad[k] = 0
		}
		for d := range m.ndk {
			nd := m.ndkSum[d]
			v += numeric.Lgamma(sumA) - numeric.Lgamma(sumA+nd)
			dig := numeric.Digamma(sumA) - numeric.Digamma(sumA+nd)
			for k := 0; k < m.cfg.K; k++ {
				c := m.ndk[d][k]
				v += numeric.Lgamma(alpha[k]+c) - numeric.Lgamma(alpha[k])
				grad[k] += numeric.Digamma(alpha[k]+c) - numeric.Digamma(alpha[k]) + dig
			}
		}
		return v
	}
	if a, _, err := opt.MaximizePositive(alphaObj, m.alpha); err == nil || err == numeric.ErrLineSearch {
		copy(m.alpha, a)
	}

	// --- β_k (Eq. 26) and δ_k (Eq. 27): per-topic priors of the
	// per-document emission Dirichlets.
	for k := 0; k < m.cfg.K; k++ {
		m.optimizeEmissionPrior(opt, k, true)
		if m.u > 0 {
			m.optimizeEmissionPrior(opt, k, false)
		}
		m.betaSum[k] = numeric.Sum(m.betaPrior[k])
		m.deltaSum[k] = numeric.Sum(m.deltaPrior[k])
	}
}

// optimizeEmissionPrior maximizes Σ_d [ log DirMult(C_k·d | prior) ] in
// the prior vector for topic k; words when isBeta, URLs otherwise.
func (m *UPM) optimizeEmissionPrior(opt numeric.LBFGS, k int, isBeta bool) {
	var prior []float64
	var counts []map[int]float64
	var sums []float64
	if isBeta {
		prior = m.betaPrior[k]
		counts = make([]map[int]float64, len(m.nkwd))
		sums = make([]float64, len(m.nkwd))
		for d := range m.nkwd {
			counts[d] = m.nkwd[d][k]
			sums[d] = m.nkwdSum[d][k]
		}
	} else {
		prior = m.deltaPrior[k]
		counts = make([]map[int]float64, len(m.nkud))
		sums = make([]float64, len(m.nkud))
		for d := range m.nkud {
			counts[d] = m.nkud[d][k]
			sums[d] = m.nkudSum[d][k]
		}
	}

	// Gamma(a0, b0) prior on every coordinate (MAP instead of bare MLE):
	// the likelihood alone is maximized by driving coordinates of words
	// unseen in any document toward 0 and perfectly-consistent ones
	// toward +∞, both of which destroy held-out prediction. The prior's
	// log term repels 0 and the rate term caps growth. See DESIGN.md.
	const gammaShape, gammaRate = 1.05, 0.05
	obj := func(p, grad []float64) float64 {
		v := 0.0
		sumP := numeric.Sum(p)
		lgSumP := numeric.Lgamma(sumP)
		digSumP := numeric.Digamma(sumP)
		for i := range grad {
			v += (gammaShape-1)*math.Log(p[i]) - gammaRate*p[i]
			grad[i] = (gammaShape-1)/p[i] - gammaRate
		}
		// Gradient terms that touch every coordinate are accumulated
		// once per document; per-word terms only touch observed words.
		commonGrad := 0.0
		for d := range counts {
			if sums[d] == 0 {
				continue // document contributes Γ-ratios that cancel
			}
			v += lgSumP - numeric.Lgamma(sumP+sums[d])
			commonGrad += digSumP - numeric.Digamma(sumP+sums[d])
			for w, c := range counts[d] {
				v += numeric.Lgamma(p[w]+c) - numeric.Lgamma(p[w])
				grad[w] += numeric.Digamma(p[w]+c) - numeric.Digamma(p[w])
			}
		}
		for i := range grad {
			grad[i] += commonGrad
		}
		return v
	}
	if p, _, err := opt.MaximizePositive(obj, prior); err == nil || err == numeric.ErrLineSearch {
		copy(prior, p)
	}
}
