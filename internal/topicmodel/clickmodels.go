package topicmodel

import (
	"math/rand"

	"repro/internal/numeric"
)

// This file implements the three query-log topic models of Jiang et al.
// (DASFAA 2013, the paper's [34]), which differ in how clicked URLs
// enter the generative process:
//
//   - MWM (Meta-Word Model): URLs are folded into the word vocabulary
//     as meta-words; a single LDA runs over the merged token stream.
//   - TUM (Term-URL Model): each topic owns separate term and URL
//     multinomials; word tokens and URL tokens draw their topics
//     independently from the document mixture.
//   - CTM (Clickthrough Model): the clicked URL of a query is generated
//     from the same topic as the query's words — the topic is drawn
//     once per clickthrough event, coupling terms and URLs.

// MWM is the meta-word model.
type MWM struct {
	inner *LDA
	v     int // real word vocabulary size; URLs occupy ids v..v+u-1
}

// TrainMWM folds URLs into the vocabulary and fits LDA on the merged
// stream.
func TrainMWM(c *Corpus, cfg TrainConfig) *MWM {
	merged := &Corpus{Words: c.Words, URLs: c.URLs}
	v := c.V()
	for _, d := range c.Docs {
		nd := Document{UserID: d.UserID}
		for _, s := range d.Sessions {
			ns := Session{Time: s.Time}
			for _, ev := range s.Events {
				ne := QueryEvent{Words: append([]int(nil), ev.Words...), URL: NoURL}
				if ev.URL != NoURL {
					ne.Words = append(ne.Words, v+ev.URL) // meta-word
				}
				ns.Events = append(ns.Events, ne)
			}
			nd.Sessions = append(nd.Sessions, ns)
		}
		merged.Docs = append(merged.Docs, nd)
	}
	// The merged vocabulary is larger than Words alone; train LDA with a
	// corpus whose V() reflects it.
	inner := trainLDAWithVocab(merged, cfg, v+c.U())
	return &MWM{inner: inner, v: v}
}

// trainLDAWithVocab is TrainLDA with an explicit vocabulary size (the
// merged stream uses ids beyond c.V()).
func trainLDAWithVocab(c *Corpus, cfg TrainConfig, vocab int) *LDA {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &LDA{cfg: cfg, v: vocab}
	m.init(c)
	z := make([][][]int, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([][]int, len(doc.Sessions))
		for s, sess := range doc.Sessions {
			sessWords := sess.Words()
			z[d][s] = make([]int, len(sessWords))
			for i, w := range sessWords {
				k := rng.Intn(cfg.K)
				z[d][s][i] = k
				m.add(d, k, w, 1)
			}
		}
	}
	weights := make([]float64, cfg.K)
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range c.Docs {
			for s, sess := range doc.Sessions {
				sessWords := sess.Words()
				for i, w := range sessWords {
					old := z[d][s][i]
					m.add(d, old, w, -1)
					for k := 0; k < cfg.K; k++ {
						weights[k] = (m.ndk[d][k] + cfg.Alpha) *
							(m.nkw[k][w] + cfg.Beta) / (m.nk[k] + cfg.Beta*float64(m.v))
					}
					k := numeric.SampleCategorical(rng, weights)
					z[d][s][i] = k
					m.add(d, k, w, 1)
				}
			}
		}
	}
	return m
}

// Name implements Model.
func (m *MWM) Name() string { return "MWM" }

// K implements Model.
func (m *MWM) K() int { return m.inner.K() }

// PredictiveWordProb implements Model. Word probabilities are
// renormalized over the word portion of the merged vocabulary so the
// comparison with word-only models is fair.
func (m *MWM) PredictiveWordProb(d, w int) float64 {
	if d >= len(m.inner.ndk) || w >= m.v {
		return 1e-12
	}
	theta := m.inner.Theta(d)
	return mixturePredictive(theta, func(k int) float64 {
		// Mass on real words under topic k.
		wordMass := (m.inner.nk[k] - m.urlMass(k) + m.inner.cfg.Beta*float64(m.v))
		return (m.inner.nkw[k][w] + m.inner.cfg.Beta) / wordMass
	})
}

// urlMass returns the token count topic k spends on meta-words.
func (m *MWM) urlMass(k int) float64 {
	s := 0.0
	for u := m.v; u < m.inner.v; u++ {
		s += m.inner.nkw[k][u]
	}
	return s
}

// TUM is the term-URL model: independent word and URL topic draws with
// separate per-topic emission distributions.
type TUM struct {
	cfg  TrainConfig
	v, u int
	ndk  [][]float64
	nkw  [][]float64
	nk   []float64
	nku  [][]float64
	nkuS []float64
	ndS  []float64
}

// TrainTUM fits the term-URL model by collapsed Gibbs sampling over
// word tokens and URL tokens independently.
func TrainTUM(c *Corpus, cfg TrainConfig) *TUM {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &TUM{cfg: cfg, v: c.V(), u: c.U()}
	m.ndk = make([][]float64, len(c.Docs))
	m.ndS = make([]float64, len(c.Docs))
	for d := range m.ndk {
		m.ndk[d] = make([]float64, cfg.K)
	}
	m.nkw = make([][]float64, cfg.K)
	m.nk = make([]float64, cfg.K)
	m.nku = make([][]float64, cfg.K)
	m.nkuS = make([]float64, cfg.K)
	for k := 0; k < cfg.K; k++ {
		m.nkw[k] = make([]float64, m.v)
		m.nku[k] = make([]float64, m.u)
	}

	zw := make([][][]int, len(c.Docs)) // word-token topics per session
	zu := make([][][]int, len(c.Docs)) // URL-token topics per session
	for d, doc := range c.Docs {
		zw[d] = make([][]int, len(doc.Sessions))
		zu[d] = make([][]int, len(doc.Sessions))
		for s, sess := range doc.Sessions {
			words, urls := sess.Words(), sess.URLs()
			zw[d][s] = make([]int, len(words))
			zu[d][s] = make([]int, len(urls))
			for i, w := range words {
				k := rng.Intn(cfg.K)
				zw[d][s][i] = k
				m.addWord(d, k, w, 1)
			}
			for i, u := range urls {
				k := rng.Intn(cfg.K)
				zu[d][s][i] = k
				m.addURL(d, k, u, 1)
			}
		}
	}
	weights := make([]float64, cfg.K)
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range c.Docs {
			for s, sess := range doc.Sessions {
				words, urls := sess.Words(), sess.URLs()
				for i, w := range words {
					old := zw[d][s][i]
					m.addWord(d, old, w, -1)
					for k := 0; k < cfg.K; k++ {
						weights[k] = (m.ndk[d][k] + cfg.Alpha) *
							(m.nkw[k][w] + cfg.Beta) / (m.nk[k] + cfg.Beta*float64(m.v))
					}
					k := numeric.SampleCategorical(rng, weights)
					zw[d][s][i] = k
					m.addWord(d, k, w, 1)
				}
				for i, u := range urls {
					old := zu[d][s][i]
					m.addURL(d, old, u, -1)
					for k := 0; k < cfg.K; k++ {
						weights[k] = (m.ndk[d][k] + cfg.Alpha) *
							(m.nku[k][u] + cfg.Delta) / (m.nkuS[k] + cfg.Delta*float64(m.u))
					}
					k := numeric.SampleCategorical(rng, weights)
					zu[d][s][i] = k
					m.addURL(d, k, u, 1)
				}
			}
		}
	}
	return m
}

func (m *TUM) addWord(d, k, w int, delta float64) {
	m.ndk[d][k] += delta
	m.ndS[d] += delta
	m.nkw[k][w] += delta
	m.nk[k] += delta
}

func (m *TUM) addURL(d, k, u int, delta float64) {
	m.ndk[d][k] += delta
	m.ndS[d] += delta
	m.nku[k][u] += delta
	m.nkuS[k] += delta
}

// Name implements Model.
func (m *TUM) Name() string { return "TUM" }

// K implements Model.
func (m *TUM) K() int { return m.cfg.K }

// Theta returns the smoothed document–topic distribution.
func (m *TUM) Theta(d int) []float64 {
	theta := make([]float64, m.cfg.K)
	denom := m.ndS[d] + m.cfg.Alpha*float64(m.cfg.K)
	for k := range theta {
		theta[k] = (m.ndk[d][k] + m.cfg.Alpha) / denom
	}
	return theta
}

// PredictiveWordProb implements Model.
func (m *TUM) PredictiveWordProb(d, w int) float64 {
	if d >= len(m.ndk) || w >= m.v {
		return 1e-12
	}
	return mixturePredictive(m.Theta(d), func(k int) float64 {
		return (m.nkw[k][w] + m.cfg.Beta) / (m.nk[k] + m.cfg.Beta*float64(m.v))
	})
}

// CTM is the clickthrough model: each CLICKTHROUGH event — a (query,
// clicked URL) pair — draws one topic that generates both the query's
// words and the URL. Unlike PTM2 it ignores clickless queries entirely
// (it models the click graph's information, nothing more), and unlike
// TUM the query words and the URL of one event share a topic.
type CTM struct{ *PTM }

// TrainCTM fits the clickthrough model on the clicked events only.
func TrainCTM(c *Corpus, cfg TrainConfig) *CTM {
	clicked := &Corpus{Words: c.Words, URLs: c.URLs}
	for _, d := range c.Docs {
		nd := Document{UserID: d.UserID}
		for _, s := range d.Sessions {
			ns := Session{Time: s.Time}
			for _, ev := range s.Events {
				if ev.URL != NoURL {
					ns.Events = append(ns.Events, ev)
				}
			}
			if len(ns.Events) > 0 {
				nd.Sessions = append(nd.Sessions, ns)
			}
		}
		// Keep the document even when empty so indices stay aligned with
		// the source corpus.
		clicked.Docs = append(clicked.Docs, nd)
	}
	return &CTM{PTM: trainPTM(clicked, cfg, true)}
}

// Name implements Model.
func (m *CTM) Name() string { return "CTM" }
