package topicmodel

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/numeric"
	"repro/internal/querylog"
)

// FoldIn infers a profile for a document that was NOT part of training
// — the "new user" path of online personalization. It runs Gibbs
// sampling over the new document's session topics only, holding the
// learned hyperparameters (α, β, δ, τ) fixed: the global topic content
// carried by β/δ anchors the topics, and the new user's own counts
// personalize the emissions exactly as for trained users.
//
// The model is extended in place: the returned document index d serves
// Theta(d), WordProb(d, …) and PredictiveWordProb(d, …) like any
// trained document, and DocOf(userID) resolves it. Folding in a user
// ID that already exists replaces that user's document statistics.
//
// iterations is the number of Gibbs sweeps over the new document
// (default 20 when ≤ 0).
func (m *UPM) FoldIn(userID string, sessions []Session, iterations int, seed int64) int {
	if iterations <= 0 {
		iterations = 20
	}
	// Fold-in mutates per-document counts: an arena-backed (read-only)
	// model must thaw into the mutable form first. The engine only ever
	// folds into clones, so serving snapshots stay flat.
	m.thaw()
	rng := rand.New(rand.NewSource(seed))

	d, exists := m.docID[userID]
	if !exists {
		d = len(m.ndk)
		m.docID[userID] = d
		m.ndk = append(m.ndk, make([]float64, m.cfg.K))
		m.ndkSum = append(m.ndkSum, 0)
		m.nkwd = append(m.nkwd, make([]map[int]float64, m.cfg.K))
		m.nkwdSum = append(m.nkwdSum, make([]float64, m.cfg.K))
		m.nkud = append(m.nkud, make([]map[int]float64, m.cfg.K))
		m.nkudSum = append(m.nkudSum, make([]float64, m.cfg.K))
		for k := 0; k < m.cfg.K; k++ {
			m.nkwd[d][k] = make(map[int]float64)
			m.nkud[d][k] = make(map[int]float64)
		}
	} else {
		// Replace: clear the old statistics.
		for k := 0; k < m.cfg.K; k++ {
			m.ndk[d][k] = 0
			m.nkwd[d][k] = make(map[int]float64)
			m.nkwdSum[d][k] = 0
			m.nkud[d][k] = make(map[int]float64)
			m.nkudSum[d][k] = 0
		}
		m.ndkSum[d] = 0
	}

	// Drop tokens outside the trained vocabularies: the fold-in cannot
	// grow β/δ, and unseen words carry no topic signal anyway.
	clean := make([]Session, 0, len(sessions))
	for _, sess := range sessions {
		ns := Session{Time: clampUnit(sess.Time)}
		for _, ev := range sess.Events {
			ne := QueryEvent{URL: NoURL}
			for _, w := range ev.Words {
				if w >= 0 && w < m.v {
					ne.Words = append(ne.Words, w)
				}
			}
			if ev.URL >= 0 && ev.URL < m.u {
				ne.URL = ev.URL
			}
			if len(ne.Words) > 0 || ne.URL != NoURL {
				ns.Events = append(ns.Events, ne)
			}
		}
		if len(ns.Events) > 0 {
			clean = append(clean, ns)
		}
	}
	if len(clean) == 0 {
		return d
	}

	// Greedy anchored initialization: before the document accumulates
	// its own counts, assign each session to the topic the LEARNED
	// priors (β, δ, τ) explain best. Random initialization would let
	// the per-document emissions self-reinforce an arbitrary labeling;
	// anchoring first keeps the fold-in in the trained topic space.
	z := make([]int, len(clean))
	logw := make([]float64, m.cfg.K)
	for s, sess := range clean {
		for k := 0; k < m.cfg.K; k++ {
			logw[k] = m.sessionLogWeight(d, k, sess)
		}
		best := 0
		for k := 1; k < m.cfg.K; k++ {
			if logw[k] > logw[best] {
				best = k
			}
		}
		z[s] = best
		m.addSession(d, best, sess, 1)
	}
	for it := 0; it < iterations; it++ {
		for s, sess := range clean {
			old := z[s]
			m.addSession(d, old, sess, -1)
			for k := 0; k < m.cfg.K; k++ {
				logw[k] = m.sessionLogWeight(d, k, sess)
			}
			k := numeric.SampleLogCategorical(rng, logw)
			z[s] = k
			m.addSession(d, k, sess, 1)
		}
	}
	return d
}

func clampUnit(t float64) float64 {
	if math.IsNaN(t) || t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// SessionsForFoldIn converts sessionized query-log data into the
// model-facing session format using a corpus's EXISTING vocabularies
// (tokens never seen in training are marked out-of-vocabulary and
// dropped by FoldIn). normTime may be nil to use the corpus's own time
// range.
func SessionsForFoldIn(c *Corpus, sessions []querylog.Session, normTime func(time.Time) float64) []Session {
	if normTime == nil {
		normTime = c.NormTime
	}
	out := make([]Session, 0, len(sessions))
	for _, s := range sessions {
		ns := Session{Time: normTime(s.Entries[0].Time)}
		for _, e := range s.Entries {
			ev := QueryEvent{URL: NoURL}
			for _, w := range querylog.Tokenize(e.Query) {
				if id, ok := c.Words.Lookup(w); ok {
					ev.Words = append(ev.Words, id)
				}
			}
			if e.ClickedURL != "" {
				if id, ok := c.URLs.Lookup(e.ClickedURL); ok {
					ev.URL = id
				}
			}
			if len(ev.Words) > 0 || ev.URL != NoURL {
				ns.Events = append(ns.Events, ev)
			}
		}
		if len(ns.Events) > 0 {
			out = append(out, ns)
		}
	}
	return out
}
