// Package synth generates synthetic search-engine query logs with known
// ground truth. It stands in for the proprietary commercial log (12,085
// users) the paper evaluates on; see DESIGN.md for the substitution
// argument. The generator reproduces the statistical structure PQS-DA
// exploits:
//
//   - facets: coherent topics with their own vocabulary and URL space,
//     each a leaf of a synthetic ODP-style taxonomy;
//   - query ambiguity: shared "head" terms (the paper's "sun") that
//     belong to several facets at once;
//   - users with sparse long-term facet preferences and idiosyncratic
//     word/URL usage inside a facet (the paper's "Toyota vs Ford"
//     example);
//   - sessions: short reformulation chains within one facet;
//   - web dynamics: per-facet Beta-shaped popularity over the log's
//     time span (exercising the UPM's Topics-over-Time machinery);
//   - clickthrough noise and optional robot traffic for the cleaning
//     stage.
//
// Every run is deterministic in the seed.
package synth

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/numeric"
	"repro/internal/odp"
	"repro/internal/querylog"
)

// Facet is one coherent topic: a leaf category, a weighted vocabulary, a
// weighted URL set and a temporal popularity profile.
type Facet struct {
	ID       int
	Category odp.Category
	// Terms and TermWeights describe the facet language model (Zipf-ish).
	Terms       []string
	TermWeights []float64
	// HeadTerms are the ambiguous terms this facet shares with others.
	HeadTerms []string
	// URLs and URLWeights describe the facet's clickable pages.
	URLs       []string
	URLWeights []float64
	// TimeAlpha/TimeBeta shape the facet's Beta popularity profile over
	// the normalized [0,1] log time span.
	TimeAlpha, TimeBeta float64
}

// URLInfo is the ground truth attached to a synthetic URL.
type URLInfo struct {
	Facet int
	// Title is the high-quality field (HTML/document title) word vector
	// used by the PPR metric.
	Title map[string]float64
	// Topics is the page's distribution over facets, used as the page
	// representation in the Diversity metric's sim(p, p').
	Topics []float64
}

type entryKey struct {
	user string
	when int64 // UnixNano; per-user timestamps are unique by construction
}

// World is a generated query-log universe with full ground truth.
type World struct {
	Config   Config
	Taxonomy *odp.Taxonomy
	Facets   []Facet
	Log      *querylog.Log
	// UserPrefs maps each user to a distribution over facets.
	UserPrefs map[string][]float64

	urlInfo    map[string]URLInfo
	entryFacet map[entryKey]int
	// queryFacetCounts counts, per normalized query, how often each facet
	// generated it; the dominant facet defines the query's category.
	queryFacetCounts map[string][]int
}

// FacetOf returns the facet that generated the entry (the user's intended
// facet at that moment); ok is false for entries not produced by this
// world (e.g. hand-added ones).
func (w *World) FacetOf(e querylog.Entry) (int, bool) {
	f, ok := w.entryFacet[entryKey{e.UserID, e.Time.UnixNano()}]
	return f, ok
}

// URL returns the ground-truth info of a URL; ok is false for unknown
// URLs.
func (w *World) URL(u string) (URLInfo, bool) {
	i, ok := w.urlInfo[u]
	return i, ok
}

// PageSim returns the similarity between two clicked pages — the cosine
// of their facet-topic vectors — the sim(p, p') of the paper's Eq. 32.
func (w *World) PageSim(u1, u2 string) float64 {
	a, ok1 := w.urlInfo[u1]
	b, ok2 := w.urlInfo[u2]
	if !ok1 || !ok2 {
		return 0
	}
	return numeric.Cosine(a.Topics, b.Topics)
}

// QueryFacet returns the dominant generating facet of a normalized query
// string, or -1 when the query never occurred.
func (w *World) QueryFacet(normQuery string) int {
	counts, ok := w.queryFacetCounts[normQuery]
	if !ok {
		return -1
	}
	return numeric.ArgMax(intsToFloats(counts))
}

// QueryFacets returns every facet that ever generated the normalized
// query, ascending; nil when the query never occurred. A result with
// two or more facets marks the query as ambiguous (the "sun" case the
// diversification stage exists for); exactly one marks it
// navigational.
func (w *World) QueryFacets(normQuery string) []int {
	counts, ok := w.queryFacetCounts[normQuery]
	if !ok {
		return nil
	}
	var out []int
	for f, c := range counts {
		if c > 0 {
			out = append(out, f)
		}
	}
	return out
}

// FacetDistribution returns the normalized query's distribution over
// generating facets (counts normalized to sum 1, length = facet
// count); nil when the query never occurred.
func (w *World) FacetDistribution(normQuery string) []float64 {
	counts, ok := w.queryFacetCounts[normQuery]
	if !ok {
		return nil
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for f, c := range counts {
		out[f] = float64(c) / float64(total)
	}
	return out
}

// Queries returns every distinct normalized query the world generated,
// sorted — the evaluation harness's replay universe.
func (w *World) Queries() []string {
	out := make([]string, 0, len(w.queryFacetCounts))
	for q := range w.queryFacetCounts {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// QueryCategory returns the ODP category of a normalized query (that of
// its dominant facet), or nil when unknown.
func (w *World) QueryCategory(normQuery string) odp.Category {
	f := w.QueryFacet(normQuery)
	if f < 0 {
		return nil
	}
	return w.Facets[f].Category
}

// FacetRelevance returns the Eq. 34 taxonomy relevance between two
// facets' categories.
func (w *World) FacetRelevance(f1, f2 int) float64 {
	return odp.Relevance(w.Facets[f1].Category, w.Facets[f2].Category)
}

// TimeSpan returns the generated log's configured time range.
func (w *World) TimeSpan() (time.Time, time.Time) {
	return w.Config.Start, w.Config.Start.Add(w.Config.Span)
}

// NormalizeTime maps an absolute timestamp into the [0,1] span used by
// temporal models; values are clamped to [0,1].
func (w *World) NormalizeTime(t time.Time) float64 {
	span := w.Config.Span.Seconds()
	if span <= 0 {
		return 0
	}
	x := t.Sub(w.Config.Start).Seconds() / span
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// UserIDs returns all generated (non-robot) user IDs in order.
func (w *World) UserIDs() []string {
	out := make([]string, w.Config.NumUsers)
	for i := range out {
		out[i] = userID(i)
	}
	return out
}

func userID(i int) string { return fmt.Sprintf("u%04d", i) }

// WriteGroundTruth exports the world's oracle as TSV for external
// analysis: one section per kind (query, url, user), with the entity,
// its dominant facet and the facet's taxonomy category (queries/URLs)
// or the full facet-preference vector (users).
func (w *World) WriteGroundTruth(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if _, err := fmt.Fprintln(bw, "Kind\tEntity\tFacet\tDetail"); err != nil {
		return err
	}
	// Queries in deterministic order.
	queries := make([]string, 0, len(w.queryFacetCounts))
	for q := range w.queryFacetCounts {
		queries = append(queries, q)
	}
	sort.Strings(queries)
	for _, q := range queries {
		f := w.QueryFacet(q)
		fmt.Fprintf(bw, "query\t%s\t%d\t%s\n", q, f, w.Facets[f].Category)
	}
	urls := make([]string, 0, len(w.urlInfo))
	for u := range w.urlInfo {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		info := w.urlInfo[u]
		fmt.Fprintf(bw, "url\t%s\t%d\t%s\n", u, info.Facet, w.Facets[info.Facet].Category)
	}
	for _, uid := range w.UserIDs() {
		pref := w.UserPrefs[uid]
		best := 0
		parts := make([]string, len(pref))
		for f, p := range pref {
			parts[f] = fmt.Sprintf("%.3f", p)
			if p > pref[best] {
				best = f
			}
		}
		fmt.Fprintf(bw, "user\t%s\t%d\t%s\n", uid, best, strings.Join(parts, ","))
	}
	return bw.Flush()
}

func intsToFloats(v []int) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}
