package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/numeric"
	"repro/internal/odp"
	"repro/internal/querylog"
)

// Config controls world generation. The zero value is filled with
// defaults sized for fast tests; benchmarks scale the counts up.
type Config struct {
	Seed int64

	// NumFacets is the number of topics/leaf categories (default 12).
	NumFacets int
	// VocabPerFacet is each facet's vocabulary size (default 40).
	VocabPerFacet int
	// SharedTerms is the number of globally ambiguous head terms, each
	// injected into several facets (default 6).
	SharedTerms int
	// FacetsPerSharedTerm is how many facets each ambiguous term spans
	// (default 3).
	FacetsPerSharedTerm int
	// URLsPerFacet is each facet's page count (default 15).
	URLsPerFacet int

	// NumUsers is the number of simulated humans (default 30).
	NumUsers int
	// SessionsPerUser is the number of search sessions each user runs
	// (default 12).
	SessionsPerUser int
	// MeanSessionLen is the mean queries per session, geometric with
	// minimum 1 (default 2.5).
	MeanSessionLen float64
	// FocusFacets is how many facets a user's preference concentrates on
	// (default 3).
	FocusFacets int

	// ClickProb is the chance a query gets a click (default 0.75).
	ClickProb float64
	// NoiseClickProb is the chance a click lands on a random off-facet
	// URL (default 0.05).
	NoiseClickProb float64
	// AmbiguousQueryProb is the chance a session opens with a bare
	// shared-head-term query when the facet has one (default 0.5).
	AmbiguousQueryProb float64
	// RepeatQueryProb is the chance a (non-opening) query verbatim
	// re-issues one of the user's own past queries in the same facet —
	// the well-documented re-finding behaviour of real searchers, and
	// the strongest per-user signal the UPM exploits (default 0.35).
	RepeatQueryProb float64
	// UserWordBias is the multiplicative boost a user gives to their
	// preferred sub-vocabulary within a facet (default 6).
	UserWordBias float64

	// RobotUsers adds this many robotic burst users for cleaning tests
	// (default 0).
	RobotUsers int

	// Start and Span define the log's time range (defaults: 2012-01-01,
	// 120 days).
	Start time.Time
	Span  time.Duration
}

func (c Config) withDefaults() Config {
	def := func(p *int, v int) {
		if *p <= 0 {
			*p = v
		}
	}
	def(&c.NumFacets, 12)
	def(&c.VocabPerFacet, 40)
	def(&c.SharedTerms, 6)
	def(&c.FacetsPerSharedTerm, 3)
	def(&c.URLsPerFacet, 15)
	def(&c.NumUsers, 30)
	def(&c.SessionsPerUser, 12)
	def(&c.FocusFacets, 3)
	if c.MeanSessionLen <= 0 {
		c.MeanSessionLen = 2.5
	}
	if c.ClickProb <= 0 {
		c.ClickProb = 0.75
	}
	if c.NoiseClickProb <= 0 {
		c.NoiseClickProb = 0.05
	}
	if c.AmbiguousQueryProb <= 0 {
		c.AmbiguousQueryProb = 0.5
	}
	if c.RepeatQueryProb <= 0 {
		c.RepeatQueryProb = 0.35
	}
	if c.UserWordBias <= 0 {
		c.UserWordBias = 6
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Span <= 0 {
		c.Span = 120 * 24 * time.Hour
	}
	return c
}

// Generate builds a complete synthetic world from the config.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := &World{
		Config:           cfg,
		Log:              &querylog.Log{},
		UserPrefs:        make(map[string][]float64),
		urlInfo:          make(map[string]URLInfo),
		entryFacet:       make(map[entryKey]int),
		queryFacetCounts: make(map[string][]int),
	}

	w.buildTaxonomyAndFacets(rng)
	w.buildUsersAndSessions(rng)
	w.addRobots(rng)
	w.assignQueryCategories()
	return w
}

// buildTaxonomyAndFacets creates the category tree, facet vocabularies,
// ambiguous head terms and facet URL spaces.
func (w *World) buildTaxonomyAndFacets(rng *rand.Rand) {
	cfg := w.Config
	// Choose branching so the full tree has at least NumFacets leaves.
	branching := 2
	for branching*branching*branching < cfg.NumFacets {
		branching++
	}
	tax := odp.Generate(rng, odp.GenerateConfig{Depth: 3, Branching: branching})
	w.Taxonomy = tax

	used := make(map[string]bool) // global word uniqueness
	word := func(minSyll, maxSyll int) string {
		for {
			n := minSyll + rng.Intn(maxSyll-minSyll+1)
			s := ""
			for i := 0; i < n; i++ {
				s += syllable(rng)
			}
			if !used[s] && !querylog.IsStopword(s) {
				used[s] = true
				return s
			}
		}
	}

	w.Facets = make([]Facet, cfg.NumFacets)
	for f := 0; f < cfg.NumFacets; f++ {
		terms := make([]string, cfg.VocabPerFacet)
		weights := make([]float64, cfg.VocabPerFacet)
		for i := range terms {
			terms[i] = word(2, 4)
			weights[i] = 1 / float64(i+1) // Zipf rank weights
		}
		urls := make([]string, cfg.URLsPerFacet)
		uw := make([]float64, cfg.URLsPerFacet)
		for i := range urls {
			urls[i] = fmt.Sprintf("www.%s%d.com/%s", word(2, 3), i, tax.Leaves[f].String())
			uw[i] = 1 / float64(i+1)
		}
		w.Facets[f] = Facet{
			ID:          f,
			Category:    tax.Leaves[f],
			Terms:       terms,
			TermWeights: weights,
			URLs:        urls,
			URLWeights:  uw,
			TimeAlpha:   1 + rng.Float64()*4,
			TimeBeta:    1 + rng.Float64()*4,
		}
	}

	// Ambiguous head terms: inject each into several facets at high
	// rank. Facet choice is biased toward taxonomy relatives of an
	// anchor facet — ambiguous query senses usually live in related
	// categories (a brand vs. its product line), with the occasional
	// "sun"-style cross-branch collision.
	for s := 0; s < cfg.SharedTerms; s++ {
		head := word(1, 2)
		n := cfg.FacetsPerSharedTerm
		if n > cfg.NumFacets {
			n = cfg.NumFacets
		}
		anchor := rng.Intn(cfg.NumFacets)
		chosen := map[int]bool{anchor: true}
		for len(chosen) < n {
			weights := make([]float64, cfg.NumFacets)
			for f := range weights {
				if chosen[f] {
					continue
				}
				rel := odp.Relevance(w.Facets[anchor].Category, w.Facets[f].Category)
				weights[f] = 0.2 + 4*rel // relatives preferred, strangers possible
			}
			chosen[numeric.SampleCategorical(rng, weights)] = true
		}
		for f := range chosen {
			fc := &w.Facets[f]
			fc.Terms = append(fc.Terms, head)
			fc.TermWeights = append(fc.TermWeights, 1.5) // above Zipf rank 1
			fc.HeadTerms = append(fc.HeadTerms, head)
		}
	}

	// URL ground truth: title vector from the facet's top terms + the
	// page's own identity; topic vector peaked on the facet with small
	// mass on taxonomy siblings.
	for f := range w.Facets {
		fc := &w.Facets[f]
		for i, u := range fc.URLs {
			title := make(map[string]float64)
			// Titles mix the facet's most prominent vocabulary.
			for j := 0; j < 6 && j < len(fc.Terms); j++ {
				k := numeric.SampleCategorical(rng, fc.TermWeights)
				title[fc.Terms[k]] += 1
				_ = j
			}
			topics := make([]float64, len(w.Facets))
			for g := range w.Facets {
				rel := odp.Relevance(fc.Category, w.Facets[g].Category)
				topics[g] = 0.05 * rel
			}
			topics[f] = 1
			numeric.Normalize(topics)
			w.urlInfo[u] = URLInfo{Facet: f, Title: title, Topics: topics}
			w.Taxonomy.Assign(u, fc.Category)
			_ = i
		}
	}
}

// buildUsersAndSessions simulates every human user's search history.
func (w *World) buildUsersAndSessions(rng *rand.Rand) {
	cfg := w.Config
	for u := 0; u < cfg.NumUsers; u++ {
		uid := userID(u)
		pref := w.sampleUserPreference(rng)
		w.UserPrefs[uid] = pref

		// Idiosyncratic word/URL taste: a boost multiplier per facet term
		// and per facet URL (the "Toyota vs Ford" effect).
		wordBoost := make([][]float64, len(w.Facets))
		urlBoost := make([][]float64, len(w.Facets))
		for f := range w.Facets {
			wordBoost[f] = biasVector(rng, len(w.Facets[f].Terms), cfg.UserWordBias)
			urlBoost[f] = biasVector(rng, len(w.Facets[f].URLs), cfg.UserWordBias)
		}

		// Per-facet memory of this user's past queries for re-finding.
		pastQueries := make([][]string, len(w.Facets))

		// Session start positions: sorted uniform draws keep per-user
		// timestamps strictly increasing.
		positions := make([]float64, cfg.SessionsPerUser)
		for i := range positions {
			positions[i] = rng.Float64()
		}
		sort.Float64s(positions)

		clock := time.Time{}
		for s := 0; s < cfg.SessionsPerUser; s++ {
			pos := positions[s]
			start := cfg.Start.Add(time.Duration(pos * float64(cfg.Span)))
			if !start.After(clock) {
				start = clock.Add(time.Hour) // enforce monotone per-user time
			}
			facet := w.sampleSessionFacet(rng, pref, pos)
			clock = w.emitSession(rng, uid, facet, start, wordBoost[facet], urlBoost[facet], &pastQueries[facet])
		}
	}
}

// sampleUserPreference draws a sparse preference over facets: a few
// focus facets carry almost all the mass.
func (w *World) sampleUserPreference(rng *rand.Rand) []float64 {
	cfg := w.Config
	pref := make([]float64, len(w.Facets))
	perm := rng.Perm(len(w.Facets))
	n := cfg.FocusFacets
	if n > len(w.Facets) {
		n = len(w.Facets)
	}
	for i := 0; i < n; i++ {
		pref[perm[i]] = 1 + rng.Float64()*3
	}
	// A whisper of mass everywhere: preferences drift, and evaluation
	// needs nonzero probability for off-focus facets.
	for i := range pref {
		pref[i] += 0.05
	}
	numeric.Normalize(pref)
	return pref
}

// sampleSessionFacet combines long-term preference with the facet's
// temporal profile at normalized time pos — users follow trends.
func (w *World) sampleSessionFacet(rng *rand.Rand, pref []float64, pos float64) int {
	weights := make([]float64, len(w.Facets))
	for f := range w.Facets {
		fc := &w.Facets[f]
		weights[f] = pref[f] * (0.1 + numeric.BetaPDF(pos, fc.TimeAlpha, fc.TimeBeta))
	}
	return numeric.SampleCategorical(rng, weights)
}

// emitSession generates one session's entries and returns the user's
// advanced clock.
func (w *World) emitSession(rng *rand.Rand, uid string, facet int, start time.Time, wordBoost, urlBoost []float64, past *[]string) time.Time {
	cfg := w.Config
	fc := &w.Facets[facet]

	// Geometric session length with mean MeanSessionLen.
	length := 1
	p := 1 / cfg.MeanSessionLen
	for rng.Float64() > p && length < 8 {
		length++
	}

	clock := start
	for q := 0; q < length; q++ {
		var query string
		switch {
		case q == 0 && len(fc.HeadTerms) > 0 && rng.Float64() < cfg.AmbiguousQueryProb:
			// Open with the bare ambiguous head term — the "sun" moment.
			query = fc.HeadTerms[rng.Intn(len(fc.HeadTerms))]
		case len(*past) > 0 && rng.Float64() < cfg.RepeatQueryProb:
			// Re-find: verbatim re-issue of one of the user's own past
			// queries in this facet.
			query = (*past)[rng.Intn(len(*past))]
		default:
			query = w.facetQuery(rng, fc, wordBoost)
			*past = append(*past, query)
		}
		url := ""
		if rng.Float64() < cfg.ClickProb {
			if rng.Float64() < cfg.NoiseClickProb {
				other := &w.Facets[rng.Intn(len(w.Facets))]
				url = other.URLs[rng.Intn(len(other.URLs))]
			} else {
				weights := make([]float64, len(fc.URLs))
				for i := range weights {
					weights[i] = fc.URLWeights[i] * urlBoost[i]
				}
				url = fc.URLs[numeric.SampleCategorical(rng, weights)]
			}
		}
		e := querylog.Entry{UserID: uid, Query: query, ClickedURL: url, Time: clock}
		w.Log.Append(e)
		w.recordEntry(e, facet)
		clock = clock.Add(time.Duration(20+rng.Intn(90)) * time.Second)
	}
	return clock
}

// facetQuery samples a 1–3 term query from the facet vocabulary under
// the user's word bias.
func (w *World) facetQuery(rng *rand.Rand, fc *Facet, wordBoost []float64) string {
	weights := make([]float64, len(fc.Terms))
	for i := range weights {
		weights[i] = fc.TermWeights[i] * wordBoost[i]
	}
	n := 1 + rng.Intn(3)
	seen := make(map[int]bool, n)
	q := ""
	for i := 0; i < n; i++ {
		k := numeric.SampleCategorical(rng, weights)
		if seen[k] {
			continue
		}
		seen[k] = true
		if q != "" {
			q += " "
		}
		q += fc.Terms[k]
	}
	return q
}

// recordEntry stores ground truth for an emitted entry.
func (w *World) recordEntry(e querylog.Entry, facet int) {
	w.entryFacet[entryKey{e.UserID, e.Time.UnixNano()}] = facet
	norm := querylog.NormalizeQuery(e.Query)
	counts := w.queryFacetCounts[norm]
	if counts == nil {
		counts = make([]int, len(w.Facets))
		w.queryFacetCounts[norm] = counts
	}
	counts[facet]++
}

// addRobots appends burst traffic from robotic users (cleaning fodder).
func (w *World) addRobots(rng *rand.Rand) {
	cfg := w.Config
	for r := 0; r < cfg.RobotUsers; r++ {
		uid := fmt.Sprintf("robot%03d", r)
		clock := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.Span))))
		for i := 0; i < 100; i++ {
			fc := &w.Facets[rng.Intn(len(w.Facets))]
			e := querylog.Entry{
				UserID: uid,
				Query:  fc.Terms[rng.Intn(len(fc.Terms))] + " spam",
				Time:   clock,
			}
			w.Log.Append(e)
			clock = clock.Add(500 * time.Millisecond)
		}
	}
}

// assignQueryCategories binds every distinct query to its dominant
// facet's category in the taxonomy (the oracle the Relevance metric
// needs).
func (w *World) assignQueryCategories() {
	for q, counts := range w.queryFacetCounts {
		f := numeric.ArgMax(intsToFloats(counts))
		w.Taxonomy.Assign(q, w.Facets[f].Category)
	}
}

// biasVector returns per-item multiplicative boosts: roughly a third of
// the items get boosted by bias, the rest stay at 1.
func biasVector(rng *rand.Rand, n int, bias float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng.Float64() < 1.0/3 {
			v[i] = bias
		} else {
			v[i] = 1
		}
	}
	return v
}

// syllable emits a pronounceable consonant-vowel pair.
func syllable(rng *rand.Rand) string {
	const cons = "bcdfghjklmnprstvwz"
	const vow = "aeiou"
	return string([]byte{cons[rng.Intn(len(cons))], vow[rng.Intn(len(vow))]})
}
