package synth

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/querylog"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	return Generate(Config{Seed: 42, NumFacets: 6, NumUsers: 10, SessionsPerUser: 8})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, NumFacets: 4, NumUsers: 5, SessionsPerUser: 4})
	b := Generate(Config{Seed: 7, NumFacets: 4, NumUsers: 5, SessionsPerUser: 4})
	if a.Log.Len() != b.Log.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Log.Len(), b.Log.Len())
	}
	for i := range a.Log.Entries {
		ea, eb := a.Log.Entries[i], b.Log.Entries[i]
		if ea != eb {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea, eb)
		}
	}
	c := Generate(Config{Seed: 8, NumFacets: 4, NumUsers: 5, SessionsPerUser: 4})
	if c.Log.Len() == a.Log.Len() {
		same := true
		for i := range a.Log.Entries {
			if a.Log.Entries[i] != c.Log.Entries[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical logs")
		}
	}
}

func TestWorldShape(t *testing.T) {
	w := smallWorld(t)
	if len(w.Facets) != 6 {
		t.Fatalf("facets = %d", len(w.Facets))
	}
	if got := len(w.UserIDs()); got != 10 {
		t.Fatalf("users = %d", got)
	}
	if w.Log.Len() == 0 {
		t.Fatal("empty log")
	}
	// Every user should have emitted something.
	for _, u := range w.UserIDs() {
		if len(w.Log.ByUser(u)) == 0 {
			t.Errorf("user %s has no entries", u)
		}
	}
}

func TestEveryEntryHasGroundTruth(t *testing.T) {
	w := smallWorld(t)
	for _, e := range w.Log.Entries {
		f, ok := w.FacetOf(e)
		if !ok {
			t.Fatalf("entry %v has no facet ground truth", e)
		}
		if f < 0 || f >= len(w.Facets) {
			t.Fatalf("facet %d out of range", f)
		}
		if q := w.QueryFacet(querylog.NormalizeQuery(e.Query)); q < 0 {
			t.Errorf("query %q unknown to QueryFacet", e.Query)
		}
	}
}

func TestClickedURLsAreKnown(t *testing.T) {
	w := smallWorld(t)
	clicks := 0
	for _, e := range w.Log.Entries {
		if e.ClickedURL == "" {
			continue
		}
		clicks++
		info, ok := w.URL(e.ClickedURL)
		if !ok {
			t.Fatalf("clicked URL %q has no info", e.ClickedURL)
		}
		if len(info.Title) == 0 {
			t.Errorf("URL %q has empty title vector", e.ClickedURL)
		}
		if math.Abs(sum(info.Topics)-1) > 1e-9 {
			t.Errorf("URL %q topic vector sums to %v", e.ClickedURL, sum(info.Topics))
		}
	}
	if clicks == 0 {
		t.Fatal("no clicks generated at all")
	}
}

func TestAmbiguousHeadTermsSpanFacets(t *testing.T) {
	w := smallWorld(t)
	headFacets := make(map[string]map[int]bool)
	for f, fc := range w.Facets {
		for _, h := range fc.HeadTerms {
			if headFacets[h] == nil {
				headFacets[h] = make(map[int]bool)
			}
			headFacets[h][f] = true
		}
	}
	if len(headFacets) == 0 {
		t.Fatal("no head terms generated")
	}
	for h, facets := range headFacets {
		if len(facets) < 2 {
			t.Errorf("head term %q spans only %d facet(s)", h, len(facets))
		}
	}
}

func TestPageSim(t *testing.T) {
	w := smallWorld(t)
	f0, f1 := w.Facets[0], w.Facets[1]
	same := w.PageSim(f0.URLs[0], f0.URLs[1])
	diff := w.PageSim(f0.URLs[0], f1.URLs[0])
	if same <= diff {
		t.Errorf("same-facet sim %v should exceed cross-facet sim %v", same, diff)
	}
	if w.PageSim("nope", f0.URLs[0]) != 0 {
		t.Error("unknown URL sim should be 0")
	}
}

func TestUserPrefsAreDistributions(t *testing.T) {
	w := smallWorld(t)
	for u, pref := range w.UserPrefs {
		if len(pref) != len(w.Facets) {
			t.Fatalf("user %s pref len %d", u, len(pref))
		}
		if math.Abs(sum(pref)-1) > 1e-9 {
			t.Errorf("user %s pref sums to %v", u, sum(pref))
		}
		for _, p := range pref {
			if p <= 0 {
				t.Errorf("user %s has nonpositive pref mass", u)
			}
		}
	}
}

func TestPerUserTimestampsStrictlyIncrease(t *testing.T) {
	w := smallWorld(t)
	for _, u := range w.UserIDs() {
		entries := w.Log.ByUser(u)
		for i := 1; i < len(entries); i++ {
			if !entries[i].Time.After(entries[i-1].Time) {
				t.Fatalf("user %s timestamps not strictly increasing at %d", u, i)
			}
		}
	}
}

func TestSessionsAreCoherent(t *testing.T) {
	// Most queries inside a derived session should share one facet — the
	// generator writes facet-coherent sessions, sessionization should
	// mostly recover them.
	w := smallWorld(t)
	sessions := querylog.Sessionize(w.Log, querylog.SessionizerConfig{})
	coherent := 0
	for _, s := range sessions {
		f0, _ := w.FacetOf(s.Entries[0])
		ok := true
		for _, e := range s.Entries[1:] {
			if f, _ := w.FacetOf(e); f != f0 {
				ok = false
				break
			}
		}
		if ok {
			coherent++
		}
	}
	if frac := float64(coherent) / float64(len(sessions)); frac < 0.9 {
		t.Errorf("only %.0f%% of sessions facet-coherent, want ≥90%%", frac*100)
	}
}

func TestRobotsGeneratedWhenRequested(t *testing.T) {
	w := Generate(Config{Seed: 3, NumFacets: 4, NumUsers: 5, SessionsPerUser: 4, RobotUsers: 2})
	robots := 0
	for _, u := range w.Log.Users() {
		if len(u) > 5 && u[:5] == "robot" {
			robots++
		}
	}
	if robots != 2 {
		t.Fatalf("robot users = %d, want 2", robots)
	}
	cleaned, stats := querylog.Clean(w.Log, querylog.CleanerConfig{})
	if stats.RoboticUsers != 2 {
		t.Errorf("cleaner found %d robots, want 2", stats.RoboticUsers)
	}
	for _, u := range cleaned.Users() {
		if len(u) > 5 && u[:5] == "robot" {
			t.Error("robot survived cleaning")
		}
	}
}

func TestNormalizeTime(t *testing.T) {
	w := smallWorld(t)
	start, end := w.TimeSpan()
	if w.NormalizeTime(start) != 0 {
		t.Error("start should map to 0")
	}
	if w.NormalizeTime(end) != 1 {
		t.Error("end should map to 1")
	}
	mid := start.Add(end.Sub(start) / 2)
	if v := w.NormalizeTime(mid); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("mid = %v", v)
	}
	if w.NormalizeTime(start.Add(-24*time.Hour)) != 0 {
		t.Error("before-start should clamp to 0")
	}
	if w.NormalizeTime(end.Add(24*time.Hour)) != 1 {
		t.Error("after-end should clamp to 1")
	}
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func TestWriteGroundTruth(t *testing.T) {
	w := smallWorld(t)
	var buf bytes.Buffer
	if err := w.WriteGroundTruth(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "Kind\t") {
		t.Fatalf("header = %q", lines[0])
	}
	kinds := map[string]int{}
	for _, l := range lines[1:] {
		kinds[strings.SplitN(l, "\t", 2)[0]]++
	}
	if kinds["query"] == 0 || kinds["url"] == 0 || kinds["user"] != 10 {
		t.Errorf("kind counts = %v", kinds)
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := w.WriteGroundTruth(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("ground truth export not deterministic")
	}
}
