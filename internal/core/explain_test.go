package core

import (
	"testing"
	"time"
)

func TestExplainMatchesSuggest(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	q := pickQuery(t, w)
	user := w.UserIDs()[0]
	at := time.Now()

	res, err := e.Suggest(user, q, nil, at, 8)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain(user, q, nil, at, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Candidates) != len(res.Suggestions) {
		t.Fatalf("explanation has %d candidates, suggest returned %d", len(ex.Candidates), len(res.Suggestions))
	}
	for i, c := range ex.Candidates {
		if c.Suggestion != res.Suggestions[i] {
			t.Fatalf("explanation order differs at %d: %q vs %q", i, c.Suggestion, res.Suggestions[i])
		}
	}
}

func TestExplainDiagnosticsCoherent(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	q := pickQuery(t, w)
	ex, err := e.Explain(w.UserIDs()[1], q, nil, time.Now(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if ex.CompactSize == 0 {
		t.Error("no compact size recorded")
	}
	seenRanks := make(map[int]bool)
	var first *CandidateExplanation
	for i := range ex.Candidates {
		c := &ex.Candidates[i]
		if seenRanks[c.DiversityRank] {
			t.Fatalf("duplicate diversity rank %d", c.DiversityRank)
		}
		seenRanks[c.DiversityRank] = true
		if c.Relevance < 0 {
			t.Errorf("%q: negative relevance %v", c.Suggestion, c.Relevance)
		}
		if c.DiversityRank == 0 {
			first = c
		} else if c.HittingTime <= 0 {
			t.Errorf("%q (rank %d): non-positive hitting time %v", c.Suggestion, c.DiversityRank, c.HittingTime)
		}
		if c.BordaPoints <= 0 {
			t.Errorf("%q: no Borda points", c.Suggestion)
		}
	}
	if first == nil {
		t.Fatal("no rank-0 (Eq. 15) candidate in explanation")
	}
	if first.HittingTime != 0 {
		t.Errorf("first candidate has hitting time %v, want 0", first.HittingTime)
	}
	// The Eq. 15 first candidate has the largest relevance of all
	// candidates (it was argmax F*).
	for _, c := range ex.Candidates {
		if c.Relevance > first.Relevance+1e-9 {
			t.Errorf("%q relevance %v exceeds first candidate's %v", c.Suggestion, c.Relevance, first.Relevance)
		}
	}
}

func TestExplainWithoutProfiles(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	q := pickQuery(t, w)
	ex, err := e.Explain("anyone", q, nil, time.Now(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ex.Candidates {
		if c.Preference != 0 || c.BordaPoints != 0 {
			t.Errorf("profile-less explanation has personalization fields set: %+v", c)
		}
		if c.DiversityRank != i {
			t.Errorf("order should be diversification order without profiles")
		}
	}
}

func TestExplainUnknownQuery(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	if _, err := e.Explain("u", "zzz qqq", nil, time.Now(), 5); err != ErrUnknownQuery {
		t.Fatalf("err = %v", err)
	}
}
