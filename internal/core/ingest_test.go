package core

import (
	"testing"
	"time"

	"repro/internal/querylog"
	"repro/internal/synth"
)

func TestIngestAndRefreshGraphs(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	before := e.Rep().NumQueries()

	// Ingest a brand-new query from a brand-new user.
	now := time.Now()
	fresh := []querylog.Entry{
		{UserID: "late-user", Query: "completely fresh phrase", ClickedURL: "new.example/page", Time: now},
		{UserID: "late-user", Query: "completely fresh phrase two", ClickedURL: "new.example/page", Time: now.Add(30 * time.Second)},
	}
	e.Ingest(fresh)
	if e.PendingEntries() != 2 {
		t.Fatalf("pending = %d", e.PendingEntries())
	}
	// Not visible before refresh.
	if _, ok := e.Rep().QueryID("completely fresh phrase"); ok {
		t.Fatal("ingested query visible before Refresh")
	}
	if err := e.Refresh(RebuildGraphs); err != nil {
		t.Fatal(err)
	}
	if e.PendingEntries() != 0 {
		t.Fatal("dirty counter not reset")
	}
	if e.Rep().NumQueries() <= before {
		t.Fatalf("representation did not grow: %d -> %d", before, e.Rep().NumQueries())
	}
	if _, ok := e.Rep().QueryID("completely fresh phrase"); !ok {
		t.Fatal("ingested query missing after Refresh")
	}
	// And it is servable.
	res, err := e.SuggestDiversified("completely fresh phrase", nil, now, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diversified) == 0 {
		t.Fatal("no suggestions for refreshed query")
	}
}

func TestRefreshFoldInUsers(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)

	// A new user arrives speaking the EXISTING vocabulary (clone an
	// existing user's entries under a new ID).
	src := w.UserIDs()[1]
	var fresh []querylog.Entry
	for _, en := range w.Log.ByUser(src)[:8] {
		en.UserID = "fold-target"
		fresh = append(fresh, en)
	}
	e.Ingest(fresh)
	if e.Profiles().Theta("fold-target") != nil {
		t.Fatal("profile exists before refresh")
	}
	if err := e.Refresh(FoldInUsers); err != nil {
		t.Fatal(err)
	}
	if e.Profiles().Theta("fold-target") == nil {
		t.Fatal("fold-in refresh did not profile the new user")
	}
}

func TestRefreshRetrainProfiles(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 53, NumFacets: 4, NumUsers: 6, SessionsPerUser: 10})
	e := testEngine(t, w, false)
	docsBefore := e.Profiles().UPM().NumDocs()
	var fresh []querylog.Entry
	for _, en := range w.Log.ByUser(w.UserIDs()[0])[:6] {
		en.UserID = "retrain-user"
		fresh = append(fresh, en)
	}
	e.Ingest(fresh)
	if err := e.Refresh(RetrainProfiles); err != nil {
		t.Fatal(err)
	}
	if got := e.Profiles().UPM().NumDocs(); got != docsBefore+1 {
		t.Fatalf("retrained docs = %d, want %d", got, docsBefore+1)
	}
	if e.Profiles().Theta("retrain-user") == nil {
		t.Fatal("retrain lost the new user")
	}
}

func TestRefreshModesNeedProfiles(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	if err := e.Refresh(FoldInUsers); err == nil {
		t.Error("FoldInUsers without profiles accepted")
	}
	if err := e.Refresh(RetrainProfiles); err == nil {
		t.Error("RetrainProfiles without profiles accepted")
	}
	if err := e.Refresh(RebuildGraphs); err != nil {
		t.Errorf("RebuildGraphs should always work: %v", err)
	}
}
