package core

import (
	"sync"
	"testing"
	"time"
)

// The engine is immutable after NewEngine; concurrent Suggest calls
// must be safe (the memoized average transition is the only lazy
// state). Run with -race to verify.
func TestSuggestConcurrent(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	queries := make([]string, 0, 8)
	for q := range w.Log.QueryFrequency() {
		queries = append(queries, q)
		if len(queries) == 8 {
			break
		}
	}
	users := w.UserIDs()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_, err := e.Suggest(users[(g+i)%len(users)], queries[(g*3+i)%len(queries)], nil, time.Now(), 5)
				if err != nil && err != ErrUnknownQuery {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Repeated identical calls must return identical results (the engine
// has no hidden mutable ranking state).
func TestSuggestDeterministicAcrossCalls(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	q := pickQuery(t, w)
	user := w.UserIDs()[1]
	at := time.Now()
	first, err := e.Suggest(user, q, nil, at, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := e.Suggest(user, q, nil, at, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Suggestions) != len(first.Suggestions) {
			t.Fatal("result size changed between calls")
		}
		for j := range first.Suggestions {
			if first.Suggestions[j] != again.Suggestions[j] {
				t.Fatalf("call %d: suggestion %d changed: %q vs %q",
					i, j, first.Suggestions[j], again.Suggestions[j])
			}
		}
	}
}
