package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// CachedOnly is the circuit breaker's degraded path: it must serve
// exactly what a regular cached request would serve, and must never
// run the pipeline on a miss.

func TestCachedOnlyHitServesStoredList(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	e.EnableCache(64, 0)
	q := pickQuery(t, w)
	user := w.UserIDs()[0]
	at := time.Now()

	warm, err := e.Do(context.Background(), SuggestRequest{User: user, Query: q, At: at, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	solvesAfterWarm := e.SolveCount()

	deg, err := e.Do(context.Background(), SuggestRequest{User: user, Query: q, At: at, K: 6, CachedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !deg.CacheHit {
		t.Fatal("CachedOnly hit not marked CacheHit")
	}
	if !reflect.DeepEqual(deg.Diversified, warm.Diversified) {
		t.Fatalf("degraded list diverged from cached list:\n%v\n%v", deg.Diversified, warm.Diversified)
	}
	// Personalization still runs fresh on the cached list.
	if !reflect.DeepEqual(deg.Suggestions, warm.Suggestions) {
		t.Fatalf("degraded personalized order diverged:\n%v\n%v", deg.Suggestions, warm.Suggestions)
	}
	if e.SolveCount() != solvesAfterWarm {
		t.Fatal("CachedOnly ran a CG solve")
	}
	if deg.CompactTime != 0 || deg.SolveTime != 0 || deg.HittingTime != 0 {
		t.Fatal("CachedOnly reported pipeline stage timings")
	}
}

func TestCachedOnlyMissReturnsErrNotCached(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	e.EnableCache(64, 0)
	q := pickQuery(t, w)

	solves := e.SolveCount()
	res, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 6, CachedOnly: true})
	if !errors.Is(err, ErrNotCached) {
		t.Fatalf("err = %v, want ErrNotCached", err)
	}
	if e.SolveCount() != solves {
		t.Fatal("CachedOnly miss ran the pipeline")
	}
	if res.Generation != e.Generation() {
		t.Fatalf("miss result generation = %d, want %d", res.Generation, e.Generation())
	}

	// Different k misses too: the cache key includes K.
	if _, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 7, CachedOnly: true}); !errors.Is(err, ErrNotCached) {
		t.Fatalf("k=7 err = %v, want ErrNotCached (cache holds k=6)", err)
	}
}

func TestCachedOnlyWithoutCache(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	q := pickQuery(t, w)
	if _, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 6, CachedOnly: true}); !errors.Is(err, ErrNotCached) {
		t.Fatalf("err = %v, want ErrNotCached on a cacheless engine", err)
	}
}

// A hot-swap bumps the generation, which must make CachedOnly miss —
// serving a stale snapshot's list as "degraded" would silently undo
// the cache-invalidation-by-construction guarantee.
func TestCachedOnlyMissesAcrossGenerations(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	e.EnableCache(64, 0)
	q := pickQuery(t, w)
	if _, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 6}); err != nil {
		t.Fatal(err)
	}
	next := e.Clone() // clones share the cache but bump the generation
	if _, err := next.Do(context.Background(), SuggestRequest{Query: q, K: 6, CachedOnly: true}); !errors.Is(err, ErrNotCached) {
		t.Fatalf("err = %v, want ErrNotCached after generation bump", err)
	}
}
