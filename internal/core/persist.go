package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/topicmodel"
)

// persistVersion guards the on-disk format.
const persistVersion = 1

// engineWire is the serialized engine: the built representation and
// the trained user profiles — everything online suggestion needs. The
// raw log, derived sessions and counting state are deliberately NOT
// persisted (they are only inputs to the build; the paper's design
// point is that the stored profiles are a concise summary of them).
type engineWire struct {
	Version   int
	Cfg       Config
	Rep       *bipartite.Representation
	HasUPM    bool
	UPM       *topicmodel.UPM
	WordIndex *bipartite.Index
}

// Save serializes the engine to w (gob format). A loaded engine serves
// Suggest/Personalize identically to the original; the raw log and the
// delta-build counting state are not persisted, so the loaded copy
// cannot Refresh.
func (e *Engine) Save(w io.Writer) error {
	snap := e.snap.Load()
	wire := engineWire{
		Version: persistVersion,
		Cfg:     e.cfg,
		Rep:     snap.Rep,
	}
	if snap.Profiles != nil {
		wire.HasUPM = true
		wire.UPM = snap.Profiles.UPM()
		wire.WordIndex = snap.Corpus.Words
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadEngine deserializes an engine previously written by Save.
func LoadEngine(r io.Reader) (*Engine, error) {
	var wire engineWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: loading engine: %w", err)
	}
	if wire.Version != persistVersion {
		return nil, fmt.Errorf("core: engine file version %d, want %d", wire.Version, persistVersion)
	}
	if wire.Rep == nil {
		return nil, fmt.Errorf("core: engine file has no representation")
	}
	e := &Engine{cfg: wire.Cfg, segs: &querylog.SegmentList{}, compacts: newCompactCache(wire.Cfg.CompactCache)}
	if err := e.initStrategies(); err != nil {
		return nil, err
	}
	snap := (&snapshot.Snapshot{
		Rep:        wire.Rep,
		Sessions:   wire.Rep.Sessions,
		Generation: 1,
		Stats: snapshot.Stats{
			Mode:       snapshot.ModeFull,
			NumQueries: wire.Rep.NumQueries(),
		},
	}).Finish()
	if wire.HasUPM {
		if wire.UPM == nil || wire.WordIndex == nil {
			return nil, fmt.Errorf("core: engine file profile section incomplete")
		}
		snap.Profiles = profile.NewStoreFromIndex(wire.UPM, wire.WordIndex)
		snap.Corpus = &topicmodel.Corpus{Words: wire.WordIndex, URLs: bipartite.NewIndex()}
	}
	e.snap.Store(snap)
	return e, nil
}
