package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/profile"
	"repro/internal/topicmodel"
)

// persistVersion guards the on-disk format.
const persistVersion = 1

// engineWire is the serialized engine: the built representation and
// the trained user profiles — everything online suggestion needs. The
// raw log and derived sessions are deliberately NOT persisted (they
// are only inputs to the build; the paper's design point is that the
// stored profiles are a concise summary of them).
type engineWire struct {
	Version   int
	Cfg       Config
	Rep       *bipartite.Representation
	HasUPM    bool
	UPM       *topicmodel.UPM
	WordIndex *bipartite.Index
}

// Save serializes the engine to w (gob format). A loaded engine serves
// Suggest/Personalize identically to the original; Log and Sessions
// are nil on the loaded copy.
func (e *Engine) Save(w io.Writer) error {
	wire := engineWire{
		Version: persistVersion,
		Cfg:     e.cfg,
		Rep:     e.Rep,
	}
	if e.Profiles != nil {
		wire.HasUPM = true
		wire.UPM = e.Profiles.UPM()
		wire.WordIndex = e.Corpus.Words
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadEngine deserializes an engine previously written by Save.
func LoadEngine(r io.Reader) (*Engine, error) {
	var wire engineWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: loading engine: %w", err)
	}
	if wire.Version != persistVersion {
		return nil, fmt.Errorf("core: engine file version %d, want %d", wire.Version, persistVersion)
	}
	if wire.Rep == nil {
		return nil, fmt.Errorf("core: engine file has no representation")
	}
	e := &Engine{cfg: wire.Cfg, Rep: wire.Rep, generation: 1}
	if wire.HasUPM {
		if wire.UPM == nil || wire.WordIndex == nil {
			return nil, fmt.Errorf("core: engine file profile section incomplete")
		}
		e.Profiles = profile.NewStoreFromIndex(wire.UPM, wire.WordIndex)
		e.Corpus = &topicmodel.Corpus{Words: wire.WordIndex, URLs: bipartite.NewIndex()}
	}
	return e, nil
}
