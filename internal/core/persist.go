package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/snapwire"
)

// Engine persistence rides on the snapwire format (internal/snapwire):
// a sectioned, checksummed binary image in which every hot serving
// array is stored exactly as it is read, so loading is validation plus
// slice aliasing instead of per-element decoding. The raw log and the
// delta-build counting state are deliberately NOT persisted (they are
// only inputs to the build; the paper's design point is that the stored
// profiles are a concise summary of them), so a loaded engine serves
// but cannot Refresh — disk-loaded snapshots full-rebuild on refresh
// by reconstructing the engine from a log instead.

// wireImage is one encoded snapshot image, keyed by the snapshot
// pointer it was built from. Pointer identity is strictly finer than
// the generation counter: LearnUser republishes a changed snapshot
// under the same generation, and a generation-keyed cache would keep
// serving the pre-fold image.
type wireImage struct {
	snap *snapshot.Snapshot
	buf  []byte
}

// WireImage returns the engine's current serving snapshot encoded as a
// snapwire image, caching the encoding per snapshot so repeated
// /v1/snapshot downloads of an unchanged engine cost one encode.
func (e *Engine) WireImage() ([]byte, error) {
	snap := e.snap.Load()
	if c := e.wireImg.Load(); c != nil && c.snap == snap {
		return c.buf, nil
	}
	buf, err := e.encodeSnapshot(snap)
	if err != nil {
		return nil, err
	}
	e.wireImg.Store(&wireImage{snap: snap, buf: buf})
	return buf, nil
}

func (e *Engine) encodeSnapshot(snap *snapshot.Snapshot) ([]byte, error) {
	cfgJSON, err := json.Marshal(e.cfg)
	if err != nil {
		return nil, fmt.Errorf("core: encoding config: %w", err)
	}
	src := &snapwire.Source{
		Config:   cfgJSON,
		Rep:      snap.Rep,
		Symbols:  snap.Symbols,
		Sessions: snap.Sessions,
		Meta: snapwire.Meta{
			NumSessions: snap.Stats.NumSessions,
			LogEntries:  snap.Stats.LogEntries,
			BuiltAtNano: snap.Stats.BuiltAt.UnixNano(),
		},
	}
	if snap.Profiles != nil {
		src.UPM = snap.Profiles.UPM()
		src.Words = snap.Corpus.Words
	}
	img, err := snapwire.Encode(src)
	if err != nil {
		return nil, fmt.Errorf("core: encoding engine: %w", err)
	}
	return img, nil
}

// Save serializes the engine to w in the snapwire format. A loaded
// engine serves Suggest/Personalize identically to the original; the
// raw log is not persisted, so the loaded copy cannot Refresh.
func (e *Engine) Save(w io.Writer) error {
	img, err := e.WireImage()
	if err != nil {
		return err
	}
	_, err = w.Write(img)
	return err
}

// LoadEngine deserializes an engine previously written by Save.
// Pre-wire gob files are detected and rejected with a stable error
// naming `snaptool convert`.
func LoadEngine(r io.Reader) (*Engine, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: loading engine: %w", err)
	}
	l, err := snapwire.Load(buf)
	if err != nil {
		return nil, fmt.Errorf("core: loading engine: %w", err)
	}
	return engineFromLoaded(l)
}

// LoadEngineFile loads an engine image from disk. On linux the image
// is mmap'd read-only and the serving arrays alias the mapping (no
// heap copy of the file, nothing for the GC to scan); elsewhere — or
// when mmap fails — it falls back to a heap read. Inspect the result
// of Mapped() on the returned engine's stats for which path was taken.
func LoadEngineFile(path string) (*Engine, error) {
	l, err := snapwire.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading engine: %w", err)
	}
	return engineFromLoaded(l)
}

func engineFromLoaded(l *snapwire.Loaded) (*Engine, error) {
	var cfg Config
	if l.Config != nil {
		if err := json.Unmarshal(l.Config, &cfg); err != nil {
			return nil, fmt.Errorf("core: engine file config: %w", err)
		}
	}
	e := &Engine{cfg: cfg, segs: &querylog.SegmentList{}, compacts: newCompactCache(cfg.CompactCache)}
	if err := e.initStrategies(); err != nil {
		return nil, err
	}
	e.loaded = loadedInfo{Present: true, Mapped: l.Mapped, Size: l.Size, Version: l.Version, Sections: l.Sections}
	// Seed the image cache with the bytes we just loaded: Save and
	// GET /v1/snapshot on an unmutated loaded engine return the original
	// image verbatim (sessions included — the serving snapshot decodes
	// them lazily, so a fresh encode could not reproduce them).
	e.wireImg.Store(&wireImage{snap: l.Snap, buf: l.Image})
	e.snap.Store(l.Snap)
	return e, nil
}

// loadedInfo describes the wire image an engine was loaded from, for
// /v1/stats and the snapshot gauges. Zero for engines built from a log.
type loadedInfo struct {
	Present  bool
	Mapped   bool
	Size     int64
	Version  uint16
	Sections []snapwire.Section
}

// LoadedImage reports the wire image this engine was deserialized
// from; Present is false for engines built from a raw log.
func (e *Engine) LoadedImage() loadedInfo { return e.loaded }

// AdoptSnapshot swaps an externally loaded serving snapshot into a
// running engine (the POST /v1/snapshot path). The adopted snapshot is
// stamped with the NEXT generation so every generation-keyed cache
// (suggestions, compacts) invalidates; the engine's raw log — if it
// had one — no longer describes the serving state, so refresh support
// is dropped. The engine keeps its own Config: strategies and tunables
// were built at construction and the image's embedded config is only
// used when constructing a fresh engine via LoadEngine. Callers must
// serialize AdoptSnapshot with other mutators (the server does so
// under its swap lock).
func (e *Engine) AdoptSnapshot(l *snapwire.Loaded) error {
	if l == nil || l.Snap == nil {
		return fmt.Errorf("core: adopt: nil snapshot")
	}
	prev := e.snap.Load()
	l.Snap.Generation = prev.Generation + 1
	e.hasLog = false
	e.loaded = loadedInfo{Present: true, Mapped: l.Mapped, Size: l.Size, Version: l.Version, Sections: l.Sections}
	e.wireImg.Store(&wireImage{snap: l.Snap, buf: l.Image})
	e.snap.Store(l.Snap)
	return nil
}
