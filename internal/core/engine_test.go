package core

import (
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

func testWorld(t *testing.T) *synth.World {
	t.Helper()
	return synth.Generate(synth.Config{Seed: 51, NumFacets: 6, NumUsers: 12, SessionsPerUser: 15})
}

func testEngine(t *testing.T, w *synth.World, skipPersonalization bool) *Engine {
	t.Helper()
	e, err := NewEngine(w.Log, Config{
		Compact:             bipartite.CompactConfig{Budget: 60},
		UPM:                 topicmodel.UPMConfig{K: 6, Iterations: 25, Seed: 1, HyperRounds: 1, HyperIters: 5},
		SkipPersonalization: skipPersonalization,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// pickQuery returns a frequent query (well connected in the graphs).
func pickQuery(t *testing.T, w *synth.World) string {
	t.Helper()
	best, bestN := "", 0
	for q, n := range w.Log.QueryFrequency() {
		if n > bestN {
			best, bestN = q, n
		}
	}
	if best == "" {
		t.Fatal("empty log")
	}
	return best
}

func TestNewEngineEmptyLog(t *testing.T) {
	if _, err := NewEngine(&querylog.Log{}, Config{}); err == nil {
		t.Fatal("empty log accepted")
	}
}

func TestSuggestDiversifiedBasics(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	q := pickQuery(t, w)
	res, err := e.SuggestDiversified(q, nil, time.Now(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diversified) == 0 {
		t.Fatal("no suggestions")
	}
	if len(res.Diversified) > 8 {
		t.Fatalf("got %d suggestions, want ≤ 8", len(res.Diversified))
	}
	seen := map[string]bool{querylog.NormalizeQuery(q): true}
	for _, s := range res.Diversified {
		if seen[s] {
			t.Fatalf("duplicate or self suggestion %q", s)
		}
		seen[s] = true
	}
	if res.CompactSize < 2 || res.CompactSize > 60 {
		t.Errorf("compact size %d", res.CompactSize)
	}
	if res.SolveIterations <= 0 {
		t.Error("no CG iterations recorded")
	}
}

func TestSuggestDiversifiedContextExcluded(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	// Use a real session: input = second query, context = first.
	var sess querylog.Session
	for _, s := range e.Sessions() {
		if len(s.Entries) >= 2 {
			sess = s
			break
		}
	}
	if len(sess.Entries) < 2 {
		t.Skip("no multi-query session")
	}
	input := sess.Entries[1]
	ctx := []querylog.Entry{sess.Entries[0]}
	res, err := e.SuggestDiversified(input.Query, ctx, input.Time, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctxNorm := querylog.NormalizeQuery(ctx[0].Query)
	inputNorm := querylog.NormalizeQuery(input.Query)
	for _, s := range res.Diversified {
		if s == ctxNorm || s == inputNorm {
			t.Fatalf("seed query %q appeared in suggestions", s)
		}
	}
}

func TestSuggestPersonalizedReordersOnly(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	q := pickQuery(t, w)
	user := w.UserIDs()[0]
	res, err := e.Suggest(user, q, nil, time.Now(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suggestions) != len(res.Diversified) {
		t.Fatalf("personalization changed list size: %d vs %d", len(res.Suggestions), len(res.Diversified))
	}
	inDiv := make(map[string]bool)
	for _, s := range res.Diversified {
		inDiv[s] = true
	}
	for _, s := range res.Suggestions {
		if !inDiv[s] {
			t.Fatalf("personalization invented suggestion %q", s)
		}
	}
}

func TestSuggestUnknownUserFallsBack(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	q := pickQuery(t, w)
	res, err := e.Suggest("total-stranger", q, nil, time.Now(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Suggestions {
		if res.Suggestions[i] != res.Diversified[i] {
			t.Fatal("unknown user should keep the diversified order")
		}
	}
}

func TestSuggestUnknownQueryTermFallback(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	// Compose an unseen query from a known facet term.
	known := pickQuery(t, w)
	toks := querylog.Tokenize(known)
	unseen := toks[0] + " zzznever"
	if _, ok := e.Rep().QueryID(unseen); ok {
		t.Skip("fixture collision")
	}
	res, err := e.SuggestDiversified(unseen, nil, time.Now(), 5)
	if err != nil {
		t.Fatalf("term fallback failed: %v", err)
	}
	if len(res.Diversified) == 0 {
		t.Fatal("no fallback suggestions")
	}
}

func TestSuggestTotallyUnknownQuery(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	if _, err := e.SuggestDiversified("zzz yyy xxx", nil, time.Now(), 5); err != ErrUnknownQuery {
		t.Fatalf("err = %v, want ErrUnknownQuery", err)
	}
}

func TestSuggestBadK(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	if _, err := e.SuggestDiversified(pickQuery(t, w), nil, time.Now(), 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
}

func TestPersonalizeRanksOwnFacetHigher(t *testing.T) {
	// Single-facet users (FocusFacets 1) give the cleanest signal: ask
	// an ambiguous query and check personalization lifts same-facet
	// suggestions on average across users.
	w := synth.Generate(synth.Config{
		Seed: 52, NumFacets: 4, NumUsers: 12, SessionsPerUser: 25,
		FocusFacets: 1, SharedTerms: 3, FacetsPerSharedTerm: 3,
	})
	e := testEngine(t, w, false)

	// Find an ambiguous head term query that exists in the rep.
	var head string
	for _, fc := range w.Facets {
		for _, h := range fc.HeadTerms {
			if _, ok := e.Rep().QueryID(h); ok {
				head = h
				break
			}
		}
		if head != "" {
			break
		}
	}
	if head == "" {
		t.Skip("no ambiguous head query in representation")
	}
	headFacets := map[int]bool{}
	for f, fc := range w.Facets {
		for _, h := range fc.HeadTerms {
			if h == head {
				headFacets[f] = true
			}
		}
	}
	// Aggregate over every user whose top facet is one of the head's
	// facets: personalization must lift the user's own facet on average
	// (individual cases are noisy — Borda still honors diversification).
	totalBefore, totalAfter, cases := 0.0, 0.0, 0
	for _, u := range w.UserIDs() {
		pref := w.UserPrefs[u]
		userFacet := 0
		for f := range pref {
			if pref[f] > pref[userFacet] {
				userFacet = f
			}
		}
		if !headFacets[userFacet] {
			continue
		}
		res, err := e.Suggest(u, head, nil, time.Now(), 10)
		if err != nil {
			continue
		}
		meanRank := func(list []string) float64 {
			sum, n := 0.0, 0
			for i, s := range list {
				if w.QueryFacet(s) == userFacet {
					sum += float64(i)
					n++
				}
			}
			if n == 0 {
				return -1
			}
			return sum / float64(n)
		}
		before := meanRank(res.Diversified)
		after := meanRank(res.Suggestions)
		if before < 0 {
			continue
		}
		totalBefore += before
		totalAfter += after
		cases++
	}
	if cases == 0 {
		t.Skip("no user/head combination produced same-facet suggestions")
	}
	if totalAfter > totalBefore+float64(cases)*0.5 {
		t.Errorf("personalization pushed users' facets down on average over %d cases: mean rank %.2f → %.2f",
			cases, totalBefore/float64(cases), totalAfter/float64(cases))
	}
}
