package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/querylog"
	"repro/internal/sparse"
)

// batchQueries returns n distinct frequent queries for batch fixtures.
func batchQueries(t *testing.T, e *Engine, n int) []string {
	t.Helper()
	freq := e.Log().QueryFrequency()
	var out []string
	for q, c := range freq {
		if c >= 3 {
			out = append(out, q)
		}
	}
	if len(out) < n {
		t.Fatalf("only %d frequent queries, need %d", len(out), n)
	}
	return out[:n]
}

// TestDoBatchMatchesDo: batched answers must be identical to the
// single-request path, item by item.
func TestDoBatchMatchesDo(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	at := time.Now()
	queries := batchQueries(t, e, 6)

	reqs := make([]SuggestRequest, len(queries))
	for i, q := range queries {
		reqs[i] = SuggestRequest{User: w.Log.Entries[i].UserID, Query: q, At: at, K: 5}
	}
	results, errs := e.DoBatch(context.Background(), reqs)
	for i, req := range reqs {
		want, werr := e.Do(context.Background(), SuggestRequest{
			User: req.User, Query: req.Query, At: at, K: req.K, NoCache: true,
		})
		if (errs[i] == nil) != (werr == nil) {
			t.Fatalf("item %d: batch err %v, single err %v", i, errs[i], werr)
		}
		if errs[i] != nil {
			continue
		}
		if len(results[i].Suggestions) != len(want.Suggestions) {
			t.Fatalf("item %d: %d suggestions, want %d", i, len(results[i].Suggestions), len(want.Suggestions))
		}
		for j := range want.Suggestions {
			if results[i].Suggestions[j] != want.Suggestions[j] {
				t.Fatalf("item %d suggestion %d: %q, want %q", i, j, results[i].Suggestions[j], want.Suggestions[j])
			}
		}
		if results[i].SolveBatchSize < 1 {
			t.Errorf("item %d: SolveBatchSize = %d", i, results[i].SolveBatchSize)
		}
	}
}

// TestDoBatchSharesSolves: items differing only in context decay times
// (same query, same context queries) must share one blocked solve.
func TestDoBatchSharesSolves(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	qs := batchQueries(t, e, 2)
	q, cq := qs[0], qs[1]
	at := time.Now()

	reqs := make([]SuggestRequest, 4)
	for i := range reqs {
		reqs[i] = SuggestRequest{
			Query: q,
			// Same context query, different ages → different F⁰ but the
			// same seed set, so one multi-RHS solve serves all four.
			Context: []querylog.Entry{{Query: cq, Time: at.Add(-time.Duration(i+1) * 40 * time.Second)}},
			At:      at,
			K:       5,
			NoCache: true, // keep every item computing (no cache, no coalescing)
		}
	}
	before := e.SolveCount()
	results, errs := e.DoBatch(context.Background(), reqs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if results[i].SolveBatchSize != len(reqs) {
			t.Errorf("item %d: SolveBatchSize = %d, want %d", i, results[i].SolveBatchSize, len(reqs))
		}
	}
	if got := e.SolveCount() - before; got != 1 {
		t.Fatalf("batch ran %d solves, want 1", got)
	}
}

// TestDoBatchCoalescesDuplicates: identical cacheable items run the
// pipeline once and share the diversified list.
func TestDoBatchCoalescesDuplicates(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	e.EnableCache(64, 0)
	q := pickQuery(t, w)
	at := time.Now()

	reqs := make([]SuggestRequest, 5)
	for i := range reqs {
		reqs[i] = SuggestRequest{Query: q, At: at, K: 5}
	}
	before := e.SolveCount()
	results, errs := e.DoBatch(context.Background(), reqs)
	if got := e.SolveCount() - before; got != 1 {
		t.Fatalf("duplicate batch ran %d solves, want 1", got)
	}
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if i > 0 {
			if !results[i].CacheHit {
				t.Errorf("item %d: duplicate not marked CacheHit", i)
			}
			if len(results[i].Suggestions) != len(results[0].Suggestions) {
				t.Errorf("item %d: %d suggestions, leader had %d", i, len(results[i].Suggestions), len(results[0].Suggestions))
			}
		}
	}
	// The leader's list must now be cached for follow-up requests.
	res, err := e.Do(context.Background(), SuggestRequest{Query: q, At: at, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("batch result was not cached")
	}
}

// TestDoBatchMixed: invalid items, unknown queries and cached-only
// misses fail individually without poisoning the rest of the batch.
func TestDoBatchMixed(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	e.EnableCache(64, 0)
	q := pickQuery(t, w)
	at := time.Now()

	reqs := []SuggestRequest{
		{Query: q, At: at, K: 5},
		{Query: q, At: at, K: 0},                                            // invalid k
		{Query: "zzz unseen query zzz qqq", At: at, K: 5},                   // unknown
		{Query: q, At: at, K: 5, Strategy: "no-such-strategy"},              // bad strategy
		{Query: "another unseen thing qqq", At: at, K: 5, CachedOnly: true}, // cached-only miss
	}
	results, errs := e.DoBatch(context.Background(), reqs)
	if errs[0] != nil {
		t.Fatalf("good item failed: %v", errs[0])
	}
	if len(results[0].Suggestions) == 0 {
		t.Fatal("good item got no suggestions")
	}
	if errs[1] == nil {
		t.Error("k=0 item did not fail")
	}
	if !errors.Is(errs[2], ErrUnknownQuery) {
		t.Errorf("unknown query: err = %v", errs[2])
	}
	if !errors.Is(errs[3], ErrUnknownStrategy) {
		t.Errorf("bad strategy: err = %v", errs[3])
	}
	if !errors.Is(errs[4], ErrNotCached) {
		t.Errorf("cached-only miss: err = %v", errs[4])
	}
}

// TestDoBatchFloat32MatchesFloat64: the reduced-precision engine path
// must produce the same suggestion lists (selection runs on relative
// order, which survives ~1e-7 relative error by a wide margin here).
func TestDoBatchFloat32MatchesFloat64(t *testing.T) {
	w := testWorld(t)
	e64 := testEngine(t, w, true)
	e32 := testEngine(t, w, true)
	e32.cfg.Regularize.Solver.Precision = sparse.PrecisionFloat32
	e32.cfg.Hitting.Precision = sparse.PrecisionFloat32
	if err := e32.initStrategies(); err != nil { // rebuild strategy table with f32 hitting config
		t.Fatal(err)
	}
	at := time.Now()
	for _, q := range batchQueries(t, e64, 4) {
		req := SuggestRequest{Query: q, At: at, K: 5, NoCache: true}
		r64, err64 := e64.Do(context.Background(), req)
		r32, err32 := e32.Do(context.Background(), req)
		if (err64 == nil) != (err32 == nil) {
			t.Fatalf("%q: f64 err %v, f32 err %v", q, err64, err32)
		}
		if err64 != nil {
			continue
		}
		if len(r64.Suggestions) != len(r32.Suggestions) {
			t.Fatalf("%q: f32 gave %d suggestions, f64 %d", q, len(r32.Suggestions), len(r64.Suggestions))
		}
		for i := range r64.Suggestions {
			if r64.Suggestions[i] != r32.Suggestions[i] {
				t.Fatalf("%q suggestion %d: f32 %q, f64 %q", q, i, r32.Suggestions[i], r64.Suggestions[i])
			}
		}
	}
}
