package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/synth"
)

// logEnd returns the latest timestamp in the world's log, so fresh
// entries can be appended after the existing history.
func logEnd(w *synth.World) time.Time {
	var end time.Time
	for _, e := range w.Log.Entries {
		if e.Time.After(end) {
			end = e.Time
		}
	}
	return end
}

// freshBurst fabricates n post-history entries mixing existing users
// (extending or adding sessions) with a brand-new user and both known
// and novel vocabulary.
func freshBurst(w *synth.World, n int, seed int64) []querylog.Entry {
	rng := rand.New(rand.NewSource(seed))
	users := w.UserIDs()
	freq := w.Log.QueryFrequency()
	known := make([]string, 0, len(freq))
	for q := range freq {
		known = append(known, q)
	}
	base := logEnd(w).Add(time.Minute)
	out := make([]querylog.Entry, n)
	for i := range out {
		u := users[rng.Intn(len(users))]
		if rng.Intn(8) == 0 {
			u = "delta-newcomer"
		}
		q := known[rng.Intn(len(known))]
		if rng.Intn(10) == 0 {
			q = fmt.Sprintf("novel phrase %d", rng.Intn(5))
		}
		out[i] = querylog.Entry{
			UserID: u,
			Query:  q,
			Time:   base.Add(time.Duration(rng.Intn(36000)) * time.Second),
		}
		if rng.Intn(3) == 0 {
			out[i].ClickedURL = fmt.Sprintf("example.com/p%d", rng.Intn(40))
		}
	}
	return out
}

// repWeightsByName flattens one view into (query name, object name) →
// weight; ids differ between delta and full builds (interning order),
// names must not.
func repWeightsByName(r *bipartite.Representation, view bipartite.View) map[[2]string]float64 {
	out := make(map[[2]string]float64)
	v := r.W[view].View()
	for q := 0; q < r.Queries.Len(); q++ {
		for p := v.RowPtr[q]; p < v.RowPtr[q+1]; p++ {
			out[[2]string{r.Queries.Name(q), r.Objects[view].Name(v.ColIdx[p])}] = v.Val[p]
		}
	}
	return out
}

// TestRefreshDeltaEquivalentToFull is the engine-level bit-identicality
// guarantee: refreshing with DeltaRebuild produces exactly the same
// (query, object) → weight mapping in all three bipartites as
// FullRebuild over the same combined log.
func TestRefreshDeltaEquivalentToFull(t *testing.T) {
	w := testWorld(t)
	for _, frac := range []float64{0.01, 0.1} {
		n := int(float64(w.Log.Len()) * frac)
		if n < 3 {
			n = 3
		}
		fresh := freshBurst(w, n, int64(n))

		eFull := testEngine(t, w, true)
		eDelta := testEngine(t, w, true)

		eFull.Ingest(fresh)
		if err := eFull.RefreshWith(RebuildGraphs, FullRebuild); err != nil {
			t.Fatal(err)
		}
		eDelta.Ingest(fresh)
		if err := eDelta.RefreshWith(RebuildGraphs, DeltaRebuild); err != nil {
			t.Fatal(err)
		}

		if got := eDelta.LastBuild().Mode; got != snapshot.ModeDelta {
			t.Fatalf("delta engine built in mode %v", got)
		}
		if got := eFull.LastBuild().Mode; got != snapshot.ModeFull {
			t.Fatalf("full engine built in mode %v", got)
		}
		if got := eDelta.LastBuild().DeltaEntries; got != len(fresh) {
			t.Fatalf("DeltaEntries = %d, want %d", got, len(fresh))
		}

		fr, dr := eFull.Rep(), eDelta.Rep()
		for view := bipartite.View(0); view < bipartite.NumViews; view++ {
			fw, dw := repWeightsByName(fr, view), repWeightsByName(dr, view)
			if len(fw) != len(dw) {
				t.Fatalf("frac %v view %d: full %d edges, delta %d", frac, view, len(fw), len(dw))
			}
			for key, wv := range fw {
				if dv, ok := dw[key]; !ok || dv != wv {
					t.Fatalf("frac %v view %d edge %v: full %v delta %v", frac, view, key, wv, dw[key])
				}
			}
		}
	}
}

// TestRefreshDeltaFallsBackWithoutState: an engine whose snapshot has
// no counting state (as after loading from disk) cannot delta-build;
// the configured delta strategy must silently take the full path, not
// fail.
func TestRefreshDeltaFallsBackWithoutState(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	// Simulate a stateless snapshot the way persistence produces one.
	prev := e.Snapshot()
	stripped := *prev
	stripped.State = nil
	e.snap.Store(&stripped)

	e.Ingest(freshBurst(w, 5, 7))
	if err := e.RefreshWith(RebuildGraphs, DeltaRebuild); err != nil {
		t.Fatal(err)
	}
	if got := e.LastBuild().Mode; got != snapshot.ModeFull {
		t.Fatalf("build mode %v, want full fallback", got)
	}
	// And the rebuilt snapshot has state again, so the NEXT refresh can
	// go incremental.
	e.Ingest(freshBurst(w, 5, 8))
	if err := e.RefreshWith(RebuildGraphs, DeltaRebuild); err != nil {
		t.Fatal(err)
	}
	if got := e.LastBuild().Mode; got != snapshot.ModeDelta {
		t.Fatalf("second build mode %v, want delta", got)
	}
}

// TestPendingEntriesAcrossRebuildAndSwap is the dirty-counter
// regression test: ingest → rebuild → swap must leave the swapped-in
// engine with zero pending entries while the original still reports its
// own, and the generations must differ so cache keys cannot collide.
func TestPendingEntriesAcrossRebuildAndSwap(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	fresh := freshBurst(w, 10, 3)

	e.Ingest(fresh)
	if got := e.PendingEntries(); got != len(fresh) {
		t.Fatalf("pending after ingest = %d, want %d", got, len(fresh))
	}

	// Rebuild clones; the clone's refresh consumes the pending set.
	next, err := e.Rebuild(nil, RebuildGraphs)
	if err != nil {
		t.Fatal(err)
	}
	if got := next.PendingEntries(); got != 0 {
		t.Fatalf("pending after rebuild = %d, want 0", got)
	}
	// The original is untouched: still dirty, still old generation.
	if got := e.PendingEntries(); got != len(fresh) {
		t.Fatalf("original pending changed to %d", got)
	}
	if e.Generation() >= next.Generation() {
		t.Fatalf("generation did not advance: %d -> %d", e.Generation(), next.Generation())
	}

	// Simulate the server swap; post-swap state must reflect the fold.
	var ptr atomic.Pointer[Engine]
	ptr.Store(next)
	cur := ptr.Load()
	if got := cur.PendingEntries(); got != 0 {
		t.Fatalf("post-swap pending = %d", got)
	}
	if cur.Log().Len() != w.Log.Len()+len(fresh) {
		t.Fatalf("post-swap log %d, want %d", cur.Log().Len(), w.Log.Len()+len(fresh))
	}
	if got := cur.DirtyClamps(); got != 0 {
		t.Fatalf("clean rebuild counted %d dirty clamps", got)
	}
}

// TestRefreshClampsDriftedDirtyCounter is the fold-in hardening
// satellite: a dirty counter that drifted past the log no longer
// silently skips the fold-in window — Refresh derives the true pending
// set from the sealed segments, clamps the counter and counts the
// event.
func TestRefreshClampsDriftedDirtyCounter(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)

	// A new user arrives speaking existing vocabulary.
	src := w.UserIDs()[1]
	var fresh []querylog.Entry
	for _, en := range w.Log.ByUser(src)[:6] {
		en.UserID = "clamp-user"
		en.Time = en.Time.Add(90 * 24 * time.Hour)
		fresh = append(fresh, en)
	}
	e.Ingest(fresh)

	// Corrupt the counter past the log length — the exact drift that
	// used to make the old counter-derived window come up empty.
	e.dirty = e.Log().Len() + 1000

	if err := e.Refresh(FoldInUsers); err != nil {
		t.Fatal(err)
	}
	if got := e.DirtyClamps(); got != 1 {
		t.Fatalf("DirtyClamps = %d, want 1", got)
	}
	if got := e.PendingEntries(); got != 0 {
		t.Fatalf("pending after refresh = %d", got)
	}
	// The fold-in must have actually happened despite the drift.
	if e.Profiles().Theta("clamp-user") == nil {
		t.Fatal("drifted counter skipped the fold-in")
	}
}

// TestSnapshotSwapHammer runs ingest/refresh/learn/suggest
// concurrently against a server-style atomic engine pointer. Run with
// -race; it also asserts the hot-swap ordering guarantee: once a swap
// lands, requests must see the post-swap vocabulary.
func TestSnapshotSwapHammer(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	e.EnableCache(256, 0)
	query := pickQuery(t, w)

	var ptr atomic.Pointer[Engine]
	ptr.Store(e)
	var swapMu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: rebuild-and-swap loop, alternating build strategies.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fresh := freshBurst(w, 5, int64(i))
			strategy := FullRebuild
			if i%2 == 0 {
				strategy = DeltaRebuild
			}
			swapMu.Lock()
			cur := ptr.Load()
			next, err := cur.RebuildWith(fresh, RebuildGraphs, strategy)
			if err != nil {
				swapMu.Unlock()
				t.Errorf("rebuild: %v", err)
				return
			}
			ptr.Store(next)
			swapMu.Unlock()
			// Post-swap visibility: the swapped-in engine must serve
			// with zero pending and the bumped generation.
			if next.PendingEntries() != 0 {
				t.Error("post-swap engine has pending entries")
				return
			}
		}
	}()

	// Learner: fold a user into whatever engine is current.
	wg.Add(1)
	go func() {
		defer wg.Done()
		hist := w.Log.ByUser(w.UserIDs()[0])[:4]
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cur := ptr.Load()
			if err := cur.LearnUser(fmt.Sprintf("learner-%d", i%3), hist); err != nil {
				t.Errorf("learn: %v", err)
				return
			}
		}
	}()

	// Readers: suggest against the current engine; generations must be
	// monotonically non-decreasing per reader (snapshot ordering).
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cur := ptr.Load()
				res, err := cur.Do(context.Background(), SuggestRequest{
					User: w.UserIDs()[r], Query: query, K: 5,
					At: logEnd(w),
				})
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if res.Generation < lastGen {
					t.Errorf("reader %d: generation went backwards %d -> %d", r, lastGen, res.Generation)
					return
				}
				lastGen = res.Generation
			}
		}(r)
	}

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// BenchmarkRefreshBuild measures full vs delta refresh cost at three
// delta sizes (0.1%, 1%, 10% of the base log) — the EXPERIMENTS.md
// full-vs-delta table.
func BenchmarkRefreshBuild(b *testing.B) {
	w := synth.Generate(synth.Config{Seed: 51, NumFacets: 6, NumUsers: 40, SessionsPerUser: 25})
	base, err := NewEngine(w.Log, Config{
		Compact:             bipartite.CompactConfig{Budget: 60},
		SkipPersonalization: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	total := w.Log.Len()
	for _, frac := range []float64{0.001, 0.01, 0.1} {
		n := int(float64(total) * frac)
		if n < 1 {
			n = 1
		}
		fresh := freshBurst(w, n, int64(n))
		for _, tc := range []struct {
			name     string
			strategy RefreshStrategy
		}{{"full", FullRebuild}, {"delta", DeltaRebuild}} {
			b.Run(fmt.Sprintf("%s/pct=%.1f", tc.name, frac*100), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					next := base.Clone()
					next.Ingest(fresh)
					if err := next.RefreshWith(RebuildGraphs, tc.strategy); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
