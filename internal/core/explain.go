package core

import (
	stdcontext "context"
	"time"

	"repro/internal/hittingtime"
	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/regularize"
)

// Explanation breaks a suggestion run down per candidate: where each
// suggested query ranked in every stage and why the final order came
// out as it did.
type Explanation struct {
	Query string
	// Candidates are in final (personalized when available) order.
	Candidates []CandidateExplanation
	// CompactSize is the working-set size used.
	CompactSize int
}

// CandidateExplanation is one suggested query's stage-by-stage story.
type CandidateExplanation struct {
	Suggestion string
	// Relevance is the Eq. 15 regularization score F*.
	Relevance float64
	// DiversityRank is the position in the diversification ranking
	// (0 = the Eq. 15 first candidate, then hitting-time order).
	DiversityRank int
	// HittingTime is the truncated hitting time to the already-selected
	// set at the moment this candidate was picked (0 for the first).
	HittingTime float64
	// Preference is the user's Eq. 31 score (0 without profiles).
	Preference float64
	// BordaPoints is the aggregate score deciding the final order.
	BordaPoints int
}

// Explain runs the full pipeline like Suggest but returns the
// per-candidate diagnostics alongside the ranking. It costs one extra
// hitting-time evaluation per candidate.
func (e *Engine) Explain(userID, query string, context []querylog.Entry, at time.Time, k int) (Explanation, error) {
	var ex Explanation
	ex.Query = query
	// Pin one snapshot for the whole explanation so the re-run and the
	// diagnostics below cannot straddle a concurrent hot-swap. Explain
	// always narrates the engine's default strategy — its diagnostics
	// (hitting time at pick) are the paper's Algorithm-1 story.
	name, div, err := e.resolveStrategy("")
	if err != nil {
		return ex, err
	}
	snap := e.snap.Load()
	res, err := e.suggestDiversifiedOn(stdcontext.Background(), snap, div, name, query, context, at, k)
	if err != nil {
		return ex, err
	}
	ex.CompactSize = res.CompactSize

	// Recompute the stage internals for the diagnostics, mirroring
	// SuggestDiversifiedContext's seed classification: input-derived
	// seeds (including term-fallback stand-ins) anchor F⁰ at weight 1,
	// only true search context decays per Eq. 7.
	seeds, seedTimes, nInput := resolveSeeds(snap.Rep, query, context, at)
	compact, _ := e.compactFor(snap, seeds)
	seedLocals := make([]int, 0, len(seeds))
	var rctx []regularize.ContextEntry
	inputSeeds := 0
	for i := range seeds {
		local, ok := compact.LocalOf[seeds[i]]
		if !ok {
			continue
		}
		seedLocals = append(seedLocals, local)
		if i < nInput {
			inputSeeds++
		} else {
			rctx = append(rctx, regularize.ContextEntry{Local: local, Before: seedTimes[i]})
		}
	}
	if len(seedLocals) == 0 || inputSeeds == 0 {
		return ex, ErrUnknownQuery
	}
	f0 := regularize.ContextVector(compact.Size(), seedLocals[0], rctx, e.cfg.Regularize.Lambda)
	for i := 1; i < inputSeeds; i++ {
		f0[seedLocals[i]] = 1
	}
	reg, err := regularize.FirstCandidate(compact, f0, seedLocals, e.cfg.Regularize)
	if err != nil {
		return ex, err
	}
	walker := hittingtime.WalkerFor(compact, e.cfg.Hitting)

	// Hitting time of each candidate to the set selected before it.
	localOf := make(map[string]int, compact.Size())
	for i := 0; i < compact.Size(); i++ {
		localOf[compact.QueryName(i)] = i
	}
	htAtPick := make(map[string]float64, len(res.Diversified))
	divRank := make(map[string]int, len(res.Diversified))
	sel := map[int]bool{}
	for rank, name := range res.Diversified {
		divRank[name] = rank
		local, ok := localOf[name]
		if !ok {
			continue
		}
		if rank > 0 {
			h := walker.HittingTime(sel)
			htAtPick[name] = h[local]
		}
		sel[local] = true
	}

	final := res.Diversified
	prefScore := map[string]float64{}
	borda := map[string]int{}
	if snap.Profiles != nil && snap.Profiles.Theta(userID) != nil {
		for _, name := range res.Diversified {
			prefScore[name] = snap.Profiles.PreferenceScore(userID, name, e.cfg.ScoreMode)
		}
		prefRank := snap.Profiles.RankByPreference(userID, res.Diversified, e.cfg.ScoreMode)
		final = profile.BordaAggregate(res.Diversified, prefRank)
		n := len(res.Diversified)
		for pos, name := range res.Diversified {
			borda[name] += n - pos
		}
		for pos, name := range prefRank {
			borda[name] += n - pos
		}
	}

	for _, name := range final {
		ce := CandidateExplanation{
			Suggestion:    name,
			DiversityRank: divRank[name],
			HittingTime:   htAtPick[name],
			Preference:    prefScore[name],
			BordaPoints:   borda[name],
		}
		if local, ok := localOf[name]; ok {
			ce.Relevance = reg.F[local]
		}
		ex.Candidates = append(ex.Candidates, ce)
	}
	return ex, nil
}
