package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/querylog"
)

// Clone must share no mutable state: learning a user on the clone
// leaves the original's profiles untouched, and vice versa.
func TestCloneIsolatesProfiles(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	q := pickQuery(t, w)
	entries := []querylog.Entry{
		{UserID: "newbie", Query: q, Time: time.Now()},
		{UserID: "newbie", Query: q, Time: time.Now().Add(time.Second)},
	}
	c := e.Clone()
	if err := c.LearnUser("newbie", entries); err != nil {
		t.Fatal(err)
	}
	if c.Profiles().Theta("newbie") == nil {
		t.Fatal("clone did not learn the user")
	}
	if e.Profiles().Theta("newbie") != nil {
		t.Fatal("LearnUser on the clone mutated the original's profiles")
	}
}

// Rebuild must return a refreshed engine and leave the receiver fully
// intact — the contract the server's hot-swap relies on.
func TestRebuildLeavesOriginalServable(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	q := pickQuery(t, w)
	origLogLen := e.Log().Len()

	fresh := []querylog.Entry{
		{UserID: "fresh", Query: "rebuild probe query", Time: time.Now()},
		{UserID: "fresh", Query: "rebuild probe query", Time: time.Now().Add(time.Second)},
	}
	next, err := e.Rebuild(fresh, RebuildGraphs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := next.Rep().QueryID("rebuild probe query"); !ok {
		t.Fatal("rebuilt engine does not know the ingested query")
	}
	if _, ok := e.Rep().QueryID("rebuild probe query"); ok {
		t.Fatal("Rebuild mutated the original's representation")
	}
	if e.Log().Len() != origLogLen {
		t.Fatalf("Rebuild grew the original's log: %d -> %d", origLogLen, e.Log().Len())
	}
	if e.PendingEntries() != 0 {
		t.Fatalf("Rebuild left %d pending entries on the original", e.PendingEntries())
	}
	// Both engines serve.
	for _, eng := range []*Engine{e, next} {
		if _, err := eng.Suggest("", q, nil, time.Now(), 5); err != nil {
			t.Fatalf("engine unservable after Rebuild: %v", err)
		}
	}
}

// A mode the engine cannot satisfy must fail fast without ingesting.
func TestRebuildRejectsModeBeforeIngest(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true) // no profiles
	fresh := []querylog.Entry{{UserID: "u", Query: "x", Time: time.Now()}}
	if _, err := e.Rebuild(fresh, FoldInUsers); err == nil {
		t.Fatal("Rebuild(FoldInUsers) on a profile-less engine succeeded")
	}
	if e.PendingEntries() != 0 {
		t.Fatalf("rejected Rebuild ingested %d entries", e.PendingEntries())
	}
	if err := e.CanRefresh(RebuildGraphs); err != nil {
		t.Fatalf("CanRefresh(RebuildGraphs) = %v", err)
	}
}

// A cancelled context must abort Suggest with ctx.Err() instead of
// running the pipeline.
func TestSuggestContextCancelled(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	q := pickQuery(t, w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.SuggestContext(ctx, "", q, nil, time.Now(), 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Suggest with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// And an expired deadline likewise.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, err = e.SuggestContext(dctx, "", q, nil, time.Now(), 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Suggest with expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// Term-fallback seeds stand in for the input query; they must not be
// fed into the Eq. 7 context vector as decayed search context, and a
// fallback-served cold query must return suggestions.
func TestTermFallbackServesColdQuery(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	known := pickQuery(t, w)
	// A cold query sharing a term with a known one.
	cold := known + " zzznovel"
	res, err := e.Suggest("", cold, nil, time.Now(), 5)
	if err != nil {
		t.Fatalf("cold query via term fallback: %v", err)
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("cold query served no suggestions despite shared terms")
	}
	// Deterministic across calls (sort.Slice ordering is total).
	res2, err := e.Suggest("", cold, nil, time.Now(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Suggestions {
		if res.Suggestions[i] != res2.Suggestions[i] {
			t.Fatalf("fallback suggestions not deterministic: %v vs %v", res.Suggestions, res2.Suggestions)
		}
	}
}
