package core

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/snapshot"
)

// defaultCompactCacheSize bounds the compact LRU when Config leaves it
// zero. Compacts are heavyweight values (induced bipartites plus every
// memoized derivation: normalized affinities, the Eq. 15 system, the
// walker transition — a few hundred KB each at the default budget), so
// the default stays far below the suggestion cache's entry count.
const defaultCompactCacheSize = 128

// compactCache is a generation-aware LRU of built compact
// representations keyed by their seed ID set.
//
// BuildCompact plus the SpGEMM chain it feeds (normalized affinities →
// Eq. 15 system, fused walker transition) dominates the uncached
// suggestion path, yet the compact is a pure function of (snapshot,
// seed IDs, budget config): two requests for the same query with the
// same resolvable context rebuild identical state. Real traffic is
// Zipf-skewed, so the same few thousand seed sets recur constantly.
// Caching the compact — NOT the suggestion — keeps every
// query-dependent stage live (F⁰ decay weights, the CG solve, greedy
// selection, personalization) while amortizing the representation
// carving. It is therefore a second, coarser cache layer under the
// suggestion cache: a suggestion-cache miss (new k, new strategy, new
// context timing, cache disabled) can still be a compact hit.
//
// Invalidation mirrors the suggestion cache: keys embed the snapshot
// generation, so entries built against a replaced snapshot stop being
// addressable after a hot swap and age out of the LRU.
type compactCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses atomic.Int64
}

type compactEntry struct {
	key     string
	compact *bipartite.Compact
}

func newCompactCache(capacity int) *compactCache {
	if capacity == 0 {
		capacity = defaultCompactCacheSize
	}
	if capacity < 0 {
		return nil
	}
	return &compactCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// key encodes (generation, seed IDs) compactly. Seed order matters —
// BuildCompact admits seeds in order, so permutations are distinct
// compacts — which keeps the encoding a plain concatenation.
func (cc *compactCache) key(generation uint64, seeds []int) string {
	buf := make([]byte, 0, binary.MaxVarintLen64*(len(seeds)+1))
	buf = binary.AppendUvarint(buf, generation)
	for _, s := range seeds {
		buf = binary.AppendVarint(buf, int64(s))
	}
	return string(buf)
}

func (cc *compactCache) get(key string) (*bipartite.Compact, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	el, ok := cc.entries[key]
	if !ok {
		cc.misses.Add(1)
		return nil, false
	}
	cc.ll.MoveToFront(el)
	cc.hits.Add(1)
	return el.Value.(*compactEntry).compact, true
}

func (cc *compactCache) put(key string, c *bipartite.Compact) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.entries[key]; ok {
		// A concurrent request built the same compact; keep the stored
		// one so later requests converge on a single instance (and its
		// memoized derivations).
		cc.ll.MoveToFront(el)
		return
	}
	cc.entries[key] = cc.ll.PushFront(&compactEntry{key: key, compact: c})
	for cc.ll.Len() > cc.cap {
		last := cc.ll.Back()
		cc.ll.Remove(last)
		delete(cc.entries, last.Value.(*compactEntry).key)
	}
}

// CompactCacheStats is a point-in-time view of the compact LRU.
type CompactCacheStats struct {
	// Hits and Misses count lookups since engine construction. Shared
	// by clones (like the suggestion cache), so they survive hot swaps.
	Hits, Misses int64
	// Entries is the current number of cached compacts.
	Entries int
	// Capacity is the configured bound (0 when the cache is disabled).
	Capacity int
}

// CompactCacheStats reports compact-cache effectiveness; zero value
// when the cache is disabled (Config.CompactCache < 0).
func (e *Engine) CompactCacheStats() CompactCacheStats {
	cc := e.compacts
	if cc == nil {
		return CompactCacheStats{}
	}
	cc.mu.Lock()
	n := cc.ll.Len()
	cc.mu.Unlock()
	return CompactCacheStats{
		Hits:     cc.hits.Load(),
		Misses:   cc.misses.Load(),
		Entries:  n,
		Capacity: cc.cap,
	}
}

// compactFor returns the compact representation for the seed set on
// snap, from the cache when possible; cached reports which. On a miss
// the compact is built OUTSIDE the cache lock — BuildCompact is the
// expensive part, and serializing all misses behind one mutex would
// turn the cache into a choke point under concurrent distinct-query
// load; the rare duplicate concurrent build is resolved in put (first
// stored wins). Degenerate compacts (size < 2 — the pipeline rejects
// them as ErrUnknownQuery) are not cached, so junk queries cannot
// evict useful entries.
func (e *Engine) compactFor(snap *snapshot.Snapshot, seeds []int) (c *bipartite.Compact, cached bool) {
	cc := e.compacts
	if cc == nil {
		return snap.Rep.BuildCompact(seeds, e.cfg.Compact), false
	}
	key := cc.key(snap.Generation, seeds)
	if c, ok := cc.get(key); ok {
		return c, true
	}
	c = snap.Rep.BuildCompact(seeds, e.cfg.Compact)
	if c.Size() >= 2 {
		cc.put(key, c)
	}
	return c, false
}
