package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/snapwire"
)

// workloadResult is one (strategy, user, query) run's observable output.
type workloadResult struct {
	strategy, user, query string
	suggestions           []string
	diversified           []string
	compactSize           int
}

// runWorkload exercises every registered strategy over a randomized
// mix of users and queries and returns the full observable output —
// the equivalence oracle for the wire round-trip tests.
func runWorkload(t *testing.T, e *Engine, users, queries []string) []workloadResult {
	t.Helper()
	at := time.Date(2014, 3, 1, 12, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(7))
	var out []workloadResult
	for _, strat := range e.StrategyNames() {
		for i := 0; i < 6; i++ {
			u := users[rng.Intn(len(users))]
			q := queries[rng.Intn(len(queries))]
			res, err := e.Do(context.Background(), SuggestRequest{Strategy: strat, User: u, Query: q, At: at, K: 8})
			if err != nil {
				t.Fatalf("strategy %s user %s query %q: %v", strat, u, q, err)
			}
			out = append(out, workloadResult{
				strategy: strat, user: u, query: q,
				suggestions: res.Suggestions, diversified: res.Diversified,
				compactSize: res.CompactSize,
			})
		}
	}
	return out
}

func assertWorkloadEqual(t *testing.T, label string, want, got []workloadResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d", label, len(want), len(got))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.strategy != b.strategy || a.user != b.user || a.query != b.query {
			t.Fatalf("%s: workload drift at %d", label, i)
		}
		if a.compactSize != b.compactSize {
			t.Fatalf("%s: %s/%q compact %d vs %d", label, a.strategy, a.query, a.compactSize, b.compactSize)
		}
		if strings.Join(a.suggestions, "|") != strings.Join(b.suggestions, "|") {
			t.Fatalf("%s: %s/%s/%q suggestions\n  orig: %v\n  load: %v",
				label, a.strategy, a.user, a.query, a.suggestions, b.suggestions)
		}
		if strings.Join(a.diversified, "|") != strings.Join(b.diversified, "|") {
			t.Fatalf("%s: %s/%s/%q diversified\n  orig: %v\n  load: %v",
				label, a.strategy, a.user, a.query, a.diversified, b.diversified)
		}
	}
}

func workloadInputs(t *testing.T) (*Engine, []string, []string) {
	t.Helper()
	w := testWorld(t)
	e := testEngine(t, w, false)
	users := w.UserIDs()
	freq := w.Log.QueryFrequency()
	queries := make([]string, 0, len(freq))
	for q := range freq {
		queries = append(queries, q)
	}
	sort.Slice(queries, func(i, j int) bool {
		if freq[queries[i]] != freq[queries[j]] {
			return freq[queries[i]] > freq[queries[j]]
		}
		return queries[i] < queries[j]
	})
	if len(queries) > 8 {
		queries = queries[:8]
	}
	return e, users, queries
}

// TestWireRoundTripAllStrategies is the PR's acceptance oracle: build →
// WriteTo → Load on both the heap path (LoadEngine) and the mmap path
// (LoadEngineFile) must serve identical suggestions for a randomized
// workload across every registered strategy.
func TestWireRoundTripAllStrategies(t *testing.T) {
	e, users, queries := workloadInputs(t)
	want := runWorkload(t, e, users, queries)

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}

	heap, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if heap.LoadedImage().Mapped {
		t.Fatal("reader path claims an mmap")
	}
	assertWorkloadEqual(t, "heap", want, runWorkload(t, heap, users, queries))

	path := filepath.Join(t.TempDir(), "engine.pqsw")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadEngineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info := mapped.LoadedImage()
	if !info.Present || info.Size != int64(buf.Len()) || len(info.Sections) == 0 {
		t.Fatalf("loaded image info: %+v", info)
	}
	t.Logf("file path mapped=%v size=%d sections=%d", info.Mapped, info.Size, len(info.Sections))
	assertWorkloadEqual(t, "mmap", want, runWorkload(t, mapped, users, queries))

	// And the loaded engine must re-encode to a servable image (the
	// GET /v1/snapshot of a POST-fed replica).
	img, err := mapped.WireImage()
	if err != nil {
		t.Fatal(err)
	}
	again, err := LoadEngine(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	assertWorkloadEqual(t, "re-encode", want, runWorkload(t, again, users, queries))
}

func TestWireImageCachedPerSnapshot(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	a, err := e.WireImage()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.WireImage()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("unchanged snapshot re-encoded")
	}
}

func TestAdoptSnapshot(t *testing.T) {
	e, users, queries := workloadInputs(t)
	want := runWorkload(t, e, users, queries)
	img, err := e.WireImage()
	if err != nil {
		t.Fatal(err)
	}

	// A second, differently built engine adopts the first one's image.
	w2 := testWorld(t)
	other := testEngine(t, w2, false)
	prevGen := other.Snapshot().Generation
	l, err := snapwire.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AdoptSnapshot(l); err != nil {
		t.Fatal(err)
	}
	if got := other.Snapshot().Generation; got != prevGen+1 {
		t.Fatalf("generation %d after adopt, want %d", got, prevGen+1)
	}
	assertWorkloadEqual(t, "adopted", want, runWorkload(t, other, users, queries))
	if err := other.Refresh(RebuildGraphs); err == nil {
		t.Fatal("refresh worked after adopt — raw log no longer matches serving state")
	}
}

// TestLoadEngineLegacyGob feeds a pre-wire gob engine file to
// LoadEngine and demands the stable migration error naming snaptool.
func TestLoadEngineLegacyGob(t *testing.T) {
	b, err := os.ReadFile("../../cmd/snaptool/testdata/legacy_engine.gob")
	if err != nil {
		t.Skipf("fixture unavailable: %v", err)
	}
	_, err = LoadEngine(bytes.NewReader(b))
	if !errors.Is(err, snapwire.ErrLegacyGob) {
		t.Fatalf("error %v, want ErrLegacyGob", err)
	}
	if !strings.Contains(err.Error(), "snaptool convert") {
		t.Fatalf("error does not name the migration tool: %v", err)
	}
}
