package core

import (
	"testing"
	"time"

	"repro/internal/querylog"
)

func TestLearnUserPersonalizesNewcomer(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)

	// Borrow an existing user's history for the newcomer.
	src := w.UserIDs()[2]
	entries := w.Log.ByUser(src)
	if err := e.LearnUser("brand-new", entries); err != nil {
		t.Fatal(err)
	}
	theta := e.Profiles().Theta("brand-new")
	if theta == nil {
		t.Fatal("newcomer has no profile after LearnUser")
	}
	// The newcomer now gets a personalized (non-identity) reranking for
	// some query, like the source user does.
	q := pickQuery(t, w)
	res, err := e.Suggest("brand-new", q, nil, time.Now(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("no suggestions for folded-in user")
	}
	// Profiles of the newcomer and its source should prefer the same
	// queries more often than not.
	agree := 0
	for _, s := range res.Diversified {
		a := e.Profiles().PreferenceScore("brand-new", s, 0)
		b := e.Profiles().PreferenceScore(src, s, 0)
		if (a > 0) == (b > 0) {
			agree++
		}
	}
	if agree < len(res.Diversified)/2 {
		t.Errorf("folded profile agrees on only %d/%d candidates", agree, len(res.Diversified))
	}
}

func TestLearnUserErrors(t *testing.T) {
	w := testWorld(t)
	noProfiles := testEngine(t, w, true)
	if err := noProfiles.LearnUser("x", w.Log.Entries[:3]); err == nil {
		t.Error("LearnUser succeeded without profiles")
	}
	withProfiles := testEngine(t, w, false)
	if err := withProfiles.LearnUser("x", nil); err == nil {
		t.Error("LearnUser succeeded with no entries")
	}
}

func TestLearnUserOverridesUserID(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	entries := []querylog.Entry{
		{UserID: "someone-else", Query: pickQuery(t, w), Time: time.Now()},
	}
	if err := e.LearnUser("the-user", entries); err != nil {
		t.Fatal(err)
	}
	if e.Profiles().Theta("the-user") == nil {
		t.Fatal("profile registered under wrong ID")
	}
}
