package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/suggestcache"
)

// SuggestRequest is the request object of the suggestion API: one
// struct instead of the old positional 5-argument family, so new knobs
// (cache bypass, per-request personalization skip) extend the surface
// without another signature.
type SuggestRequest struct {
	// User is the user to personalize for; empty serves the
	// diversified ranking (anonymous traffic).
	User string
	// Query is the input query.
	Query string
	// Context lists the current session's previous queries, most
	// recent last (the paper's search context, Definition 2).
	Context []querylog.Entry
	// At is the submission time, anchoring the Eq. 7 decay of Context.
	// Zero means now.
	At time.Time
	// K is the number of suggestions (must be positive).
	K int
	// Strategy selects the diversification strategy by registry name
	// ("hitting", "mmr", "pfar", "relevance", or any engine-local
	// addition — see internal/diversify). Empty resolves to the
	// engine's configured default; unknown names return
	// ErrUnknownStrategy. The resolved canonical name is part of the
	// suggestion-cache key, so strategies never serve each other's
	// lists.
	Strategy string
	// SkipPersonalization returns the diversified ranking even when the
	// engine has profiles for User.
	SkipPersonalization bool
	// NoCache bypasses the suggestion cache for this request (the
	// computation still runs; its result is not stored or shared).
	NoCache bool
	// CachedOnly answers exclusively from the suggestion cache: a hit
	// serves the stored diversified list (personalization still runs
	// fresh), a miss returns ErrNotCached WITHOUT running the pipeline.
	// This is the circuit-breaker degraded path — when the expensive
	// personalize/hitting stage is tripped, the server keeps answering
	// head queries from cache instead of queueing doomed work.
	// CachedOnly takes precedence over NoCache.
	CachedOnly bool
}

// ErrNotCached is returned by Do for CachedOnly requests whose key has
// no fresh cache entry (or when the engine has no cache at all).
var ErrNotCached = errors.New("core: no cached diversified list for this request")

// Do runs the suggestion pipeline for one request. It is the primary
// entry point; the positional Suggest/SuggestContext signatures are
// deprecated wrappers around it.
//
// When the engine has a cache (EnableCache), the expensive
// user-INDEPENDENT part — compact build, Eq. 15 CG solve, hitting-time
// selection — is served from it under a key of (engine generation,
// normalized query, time-bucketed context fingerprint, k). Concurrent
// identical misses coalesce to a single computation. Personalization is
// a cheap per-user re-rank and always runs on top of the cached
// diversified list, so one cache entry serves every user asking the
// same thing.
//
// Callers must treat the slices in the returned Result as read-only:
// on a cache hit Diversified is shared with other requests.
func (e *Engine) Do(ctx context.Context, req SuggestRequest) (Result, error) {
	if req.K <= 0 {
		return Result{}, fmt.Errorf("core: k = %d", req.K)
	}
	at := req.At
	if at.IsZero() {
		at = time.Now()
	}

	// One snapshot load per request: every stage below — cache keying,
	// the diversification pipeline, personalization — reads this value,
	// so a concurrent hot-swap can never mix states mid-request.
	snap := e.snap.Load()

	// Resolve the strategy BEFORE any cache access: the canonical name
	// (never "") is what enters the key, so an empty Strategy and the
	// default's explicit name address the same entries.
	strategy, div, serr := e.resolveStrategy(req.Strategy)
	if serr != nil {
		return Result{Generation: snap.Generation}, serr
	}

	var res Result
	var err error
	if req.CachedOnly {
		// Degraded path: cache lookup or nothing. No compute, no
		// coalescing — the point is a hard bound on per-request cost.
		if e.cache == nil {
			return Result{Generation: snap.Generation, Strategy: strategy}, ErrNotCached
		}
		key := e.cacheKey(snap, strategy, req, at)
		var ok bool
		res, ok = e.cache.Get(key)
		if !ok {
			return Result{Generation: snap.Generation, Strategy: strategy}, ErrNotCached
		}
		// Same contract as a regular hit: the stored stage timings
		// belong to the leader that computed the entry, not to this
		// request.
		res.CompactTime, res.SolveTime, res.HittingTime = 0, 0, 0
		res.CacheHit = true
	} else if e.cache != nil && !req.NoCache {
		key := e.cacheKey(snap, strategy, req, at)
		var out suggestcache.Outcome
		res, out, err = e.cache.Do(ctx, key, func(ctx context.Context) (Result, error) {
			return e.suggestDiversifiedOn(ctx, snap, div, strategy, req.Query, req.Context, at, req.K)
		})
		if out == suggestcache.Hit || out == suggestcache.Coalesced {
			// The stage timings belong to the request that actually ran
			// the pipeline; this request did none of that work.
			res.CompactTime, res.SolveTime, res.HittingTime = 0, 0, 0
			res.CacheHit = true
		}
	} else {
		res, err = e.suggestDiversifiedOn(ctx, snap, div, strategy, req.Query, req.Context, at, req.K)
	}
	res.Generation = snap.Generation
	res.Strategy = strategy
	if err != nil {
		return res, err
	}
	if !req.SkipPersonalization && snap.Profiles != nil {
		t0 := time.Now()
		sp := obs.StartSpan(ctx, "personalize")
		res.Suggestions = personalizeResultOn(snap, e.cfg.ScoreMode, req.User, &res)
		res.PersonalizeTime = time.Since(t0)
		sp.SetAttr("user", req.User)
		sp.SetAttr("known", snap.Profiles.Theta(req.User) != nil)
		sp.SetAttr("candidates", len(res.Diversified))
		sp.End()
	} else {
		res.Suggestions = res.Diversified
		res.PersonalizeTime = 0
	}
	return res, nil
}

// cacheKey canonicalizes a request into its suggestion-cache key. Known
// queries address the cache by their snapshot symbol id (an integer,
// fixed-width to hash) instead of the normalized query string; unknown
// queries keep the string form. Generation is part of the key, so ids
// from different snapshots can never collide.
func (e *Engine) cacheKey(snap *snapshot.Snapshot, strategy string, req SuggestRequest, at time.Time) suggestcache.Key {
	key := suggestcache.Key{
		Generation: snap.Generation,
		ContextFP:  ContextFingerprint(req.Context, at, e.cfg.Regularize.Lambda),
		K:          req.K,
		Strategy:   strategy,
	}
	norm := querylog.NormalizeQuery(req.Query)
	if snap.Symbols != nil {
		if id, ok := snap.Symbols.Lookup(norm); ok {
			key.QueryID = id + 1
			return key
		}
	}
	key.Query = norm
	return key
}

// contextBucketsPerHalfLife is the fingerprint resolution: Eq. 7 decay
// exponents are quantized to quarter half-lives, so context entries
// whose weights differ by less than ~16% share a bucket.
const contextBucketsPerHalfLife = 4

// contextMaxBucket drops context entries whose decay weight has fallen
// below ~1e-4 — they no longer influence the F⁰ vector measurably, so
// keying on them would only fragment the cache.
const contextMaxBucket = 53 // ≈ ln(1e4)/ln(2) · 4

// ContextFingerprint canonicalizes a search context for cache keying:
// each context query is normalized and paired with its Eq. 7 decay
// exponent λ·Δt quantized into quarter-half-life buckets. Two requests
// whose contexts would decay indistinguishably therefore share a cache
// entry; entries decayed to irrelevance are dropped. The empty context
// fingerprints to "".
func ContextFingerprint(sctx []querylog.Entry, at time.Time, lambda float64) string {
	if len(sctx) == 0 {
		return ""
	}
	if lambda <= 0 {
		lambda = math.Ln2 / 60 // regularize.Config's documented default
	}
	var b strings.Builder
	for _, en := range sctx {
		dt := at.Sub(en.Time)
		if dt < 0 {
			dt = 0
		}
		bucket := int(lambda * dt.Seconds() / math.Ln2 * contextBucketsPerHalfLife)
		if bucket > contextMaxBucket {
			continue
		}
		// \x1f/\x1e are field/record separators no normalized query can
		// contain, so fingerprints cannot collide across entry splits.
		fmt.Fprintf(&b, "%s\x1f%d\x1e", querylog.NormalizeQuery(en.Query), bucket)
	}
	return b.String()
}

// EnableCache attaches a suggestion cache of at most size entries with
// the given TTL (0 = no expiry) and returns it. The cache stores
// diversified (pre-personalization) lists keyed by engine generation,
// so clones and rebuilt engines SHARE it: a hot-swap invalidates old
// entries by making their generation unaddressable rather than by
// flushing. Call before serving; replacing a cache while requests are
// in flight is not synchronized.
func (e *Engine) EnableCache(size int, ttl time.Duration) *suggestcache.Cache[Result] {
	e.cache = suggestcache.New[Result](suggestcache.Config{MaxEntries: size, TTL: ttl})
	return e.cache
}

// Cache returns the attached suggestion cache, nil when disabled.
func (e *Engine) Cache() *suggestcache.Cache[Result] { return e.cache }

// Generation identifies the serving snapshot. It is stamped at build
// time and bumped by every Clone (and therefore by Rebuild and the
// server's learn path), so each hot-swapped engine carries a fresh
// value and cache keys of replaced snapshots can never be served again.
func (e *Engine) Generation() uint64 { return e.snap.Load().Generation }

// SolveCount reports how many Eq. 15 CG solves this engine instance has
// run — the cache tests' ground truth that coalesced requests share one
// solve. Clones start at zero.
func (e *Engine) SolveCount() int64 { return e.cgSolves.Load() }
