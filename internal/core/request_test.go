package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/querylog"
	"repro/internal/synth"
)

// frequentQueries returns every query appearing at least min times.
func frequentQueries(t *testing.T, l *querylog.Log, min int) []string {
	t.Helper()
	var out []string
	for q, n := range l.QueryFrequency() {
		if n >= min {
			out = append(out, q)
		}
	}
	if len(out) == 0 {
		t.Fatal("no frequent queries in fixture")
	}
	return out
}

// Do must produce exactly what the deprecated positional wrappers
// produce — they are documented as thin shims over it.
func TestDoMatchesDeprecatedSignatures(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	q := pickQuery(t, w)
	user := w.UserIDs()[0]
	at := time.Now()

	old, err1 := e.Suggest(user, q, nil, at, 8)
	res, err2 := e.Do(context.Background(), SuggestRequest{User: user, Query: q, At: at, K: 8})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(old.Suggestions, res.Suggestions) || !reflect.DeepEqual(old.Diversified, res.Diversified) {
		t.Fatalf("Do diverged from Suggest:\n%v\n%v", res.Suggestions, old.Suggestions)
	}
	if res.Generation != 1 {
		t.Fatalf("generation = %d at build", res.Generation)
	}

	// SkipPersonalization returns the diversified order even with
	// profiles present.
	skip, err := e.Do(context.Background(), SuggestRequest{User: user, Query: q, At: at, K: 8, SkipPersonalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(skip.Suggestions, skip.Diversified) {
		t.Fatal("SkipPersonalization re-ranked anyway")
	}
}

func TestDoRejectsNonPositiveK(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	for _, k := range []int{0, -1} {
		if _, err := e.Do(context.Background(), SuggestRequest{Query: pickQuery(t, w), K: k}); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

// Cached and uncached answers must be byte-identical over a randomized
// workload (the acceptance criterion): the cache is a memoization, not
// an approximation.
func TestCachedResultsIdenticalToUncached(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	e.EnableCache(256, 0)
	qs := frequentQueries(t, w.Log, 3)
	users := w.UserIDs()
	base := time.Now()
	// Context offsets chosen in distinct decay buckets so equal keys
	// imply equal inputs.
	offsets := []time.Duration{0, 30 * time.Second, 5 * time.Minute}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		req := SuggestRequest{
			User:  users[rng.Intn(len(users))],
			Query: qs[rng.Intn(len(qs))],
			At:    base,
			K:     3 + rng.Intn(8),
		}
		if rng.Intn(2) == 0 {
			req.Context = []querylog.Entry{{
				Query: qs[rng.Intn(len(qs))],
				Time:  base.Add(-offsets[rng.Intn(len(offsets))]),
			}}
		}
		cached, err1 := e.Do(context.Background(), req)
		nocache := req
		nocache.NoCache = true
		fresh, err2 := e.Do(context.Background(), nocache)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("request %d: cached err %v, uncached err %v", i, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !reflect.DeepEqual(cached.Suggestions, fresh.Suggestions) {
			t.Fatalf("request %d (%+v):\ncached   %v\nuncached %v", i, req, cached.Suggestions, fresh.Suggestions)
		}
		if !reflect.DeepEqual(cached.Diversified, fresh.Diversified) {
			t.Fatalf("request %d: diversified lists diverged", i)
		}
	}
	if st := e.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("workload never hit the cache: %+v", st)
	}
}

// One cache entry serves every user: the diversified list is computed
// once, personalization re-ranks per user on the hit.
func TestCacheSharedAcrossUsers(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	e.EnableCache(64, 0)
	q := pickQuery(t, w)
	at := time.Now()

	before := e.SolveCount()
	var firstDiversified []string
	for i, user := range w.UserIDs() {
		res, err := e.Do(context.Background(), SuggestRequest{User: user, Query: q, At: at, K: 8})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstDiversified = res.Diversified
			if res.CacheHit {
				t.Fatal("first request hit an empty cache")
			}
			continue
		}
		if !res.CacheHit {
			t.Fatalf("user %s missed the shared entry", user)
		}
		if !reflect.DeepEqual(res.Diversified, firstDiversified) {
			t.Fatalf("user %s got a different diversified list", user)
		}
	}
	if got := e.SolveCount() - before; got != 1 {
		t.Fatalf("%d CG solves for %d users asking the same query", got, len(w.UserIDs()))
	}
}

// Concurrent identical requests must coalesce to ONE CG solve.
func TestConcurrentRequestsCoalesceToOneSolve(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	e.EnableCache(64, 0)
	q := pickQuery(t, w)
	at := time.Now()

	before := e.SolveCount()
	const n = 24
	var wg sync.WaitGroup
	results := make([][]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Do(context.Background(), SuggestRequest{Query: q, At: at, K: 8})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i] = res.Suggestions
		}(i)
	}
	wg.Wait()
	if got := e.SolveCount() - before; got != 1 {
		t.Fatalf("%d CG solves for %d concurrent identical requests", got, n)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d saw a different list", i)
		}
	}
}

// A hot-swap must atomically invalidate: the rebuilt engine's first
// request re-runs the pipeline against the new snapshot instead of
// serving the predecessor's cached list.
func TestSwapInvalidatesCache(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	cache := e.EnableCache(64, 0)
	q := pickQuery(t, w)
	at := time.Now()

	res1, err := e.Do(context.Background(), SuggestRequest{Query: q, At: at, K: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild with fresh entries (the server's refresh path).
	fresh := []querylog.Entry{{UserID: "new", Query: q, Time: at}}
	next, err := e.Rebuild(fresh, RebuildGraphs)
	if err != nil {
		t.Fatal(err)
	}
	if next.Generation() != e.Generation()+1 {
		t.Fatalf("generations: old %d, rebuilt %d", e.Generation(), next.Generation())
	}
	if next.Cache() != cache {
		t.Fatal("rebuilt engine does not share the cache")
	}

	res2, err := next.Do(context.Background(), SuggestRequest{Query: q, At: at, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Fatal("post-swap request served a pre-swap cached entry")
	}
	if res2.Generation != next.Generation() {
		t.Fatalf("post-swap result stamped generation %d, want %d", res2.Generation, next.Generation())
	}
	// The old engine still serves ITS cached entry (in-flight requests
	// that loaded it pre-swap stay consistent).
	res1b, err := e.Do(context.Background(), SuggestRequest{Query: q, At: at, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res1b.CacheHit || !reflect.DeepEqual(res1b.Diversified, res1.Diversified) {
		t.Fatal("pre-swap snapshot lost its cache entry")
	}
}

func TestContextFingerprint(t *testing.T) {
	at := time.Now()
	lambda := math.Ln2 / 60 // half-life: one minute
	entry := func(q string, ago time.Duration) querylog.Entry {
		return querylog.Entry{Query: q, Time: at.Add(-ago)}
	}

	if got := ContextFingerprint(nil, at, lambda); got != "" {
		t.Errorf("empty context fingerprint = %q", got)
	}
	// Same bucket (quarter half-life = 15s): indistinguishable decay.
	a := ContextFingerprint([]querylog.Entry{entry("solar power", 2*time.Second)}, at, lambda)
	b := ContextFingerprint([]querylog.Entry{entry("Solar  POWER!", 9*time.Second)}, at, lambda)
	if a != b {
		t.Errorf("near-identical contexts fingerprint apart:\n%q\n%q", a, b)
	}
	// A minute of extra age changes the weight materially → new bucket.
	c := ContextFingerprint([]querylog.Entry{entry("solar power", 62*time.Second)}, at, lambda)
	if a == c {
		t.Error("materially decayed context shares a fingerprint")
	}
	// Different query, same bucket → different fingerprint.
	d := ContextFingerprint([]querylog.Entry{entry("lunar power", 2*time.Second)}, at, lambda)
	if a == d {
		t.Error("different context queries share a fingerprint")
	}
	// A context decayed to irrelevance (weight < 1e-4) drops out
	// entirely: it cannot fragment the cache.
	e := ContextFingerprint([]querylog.Entry{entry("ancient history", 24*time.Hour)}, at, lambda)
	if e != "" {
		t.Errorf("irrelevant context kept in fingerprint: %q", e)
	}
	// Order matters (Eq. 7 is built over an ordered context).
	two := []querylog.Entry{entry("aa", time.Second), entry("bb", 40*time.Second)}
	rev := []querylog.Entry{two[1], two[0]}
	if ContextFingerprint(two, at, lambda) == ContextFingerprint(rev, at, lambda) {
		t.Error("reordered context shares a fingerprint")
	}
}

// The fingerprint's separators must make (query, bucket) splits
// unambiguous even for adversarially similar contexts.
func TestContextFingerprintNoSplitCollisions(t *testing.T) {
	at := time.Now()
	lambda := math.Ln2 / 60
	a := ContextFingerprint([]querylog.Entry{
		{Query: "a", Time: at}, {Query: "b", Time: at},
	}, at, lambda)
	b := ContextFingerprint([]querylog.Entry{
		{Query: "a b", Time: at},
	}, at, lambda)
	if a == b {
		t.Fatalf("contexts [a, b] and [a b] collide: %q", a)
	}
}

// TTL'd entries expire even within a generation.
func TestCacheTTLInDo(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	cache := e.EnableCache(64, time.Minute)
	now := time.Now()
	clock := now
	cache.SetClock(func() time.Time { return clock })

	q := pickQuery(t, w)
	if _, err := e.Do(context.Background(), SuggestRequest{Query: q, At: now, K: 5}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Do(context.Background(), SuggestRequest{Query: q, At: now, K: 5})
	if err != nil || !res.CacheHit {
		t.Fatalf("fresh entry not served: %v %v", res.CacheHit, err)
	}
	clock = clock.Add(2 * time.Minute)
	res, err = e.Do(context.Background(), SuggestRequest{Query: q, At: now, K: 5})
	if err != nil || res.CacheHit {
		t.Fatalf("expired entry served: %v %v", res.CacheHit, err)
	}
}

// Race hammer over the full core path: suggestions against a shared
// cache while rebuilds swap generations. Run with -race.
func TestDoHammerWithRebuilds(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	e.EnableCache(128, 0)
	qs := frequentQueries(t, w.Log, 3)
	at := time.Now()

	// current is the "serving pointer" the hammer loads, as the server
	// does with its atomic.Pointer.
	var mu sync.Mutex
	current := e
	load := func() *Engine { mu.Lock(); defer mu.Unlock(); return current }

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eng := load()
				res, err := eng.Do(context.Background(), SuggestRequest{
					Query: qs[(g+i)%len(qs)], At: at, K: 5,
				})
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				// The invariant under swap: a result is always stamped
				// with the generation of the engine that served it.
				if res.Generation != eng.Generation() {
					t.Errorf("result generation %d from engine generation %d", res.Generation, eng.Generation())
					return
				}
			}
		}(g)
	}
	for i := 0; i < 4; i++ {
		fresh := []querylog.Entry{{UserID: "u", Query: qs[i%len(qs)], Time: at}}
		next, err := load().Rebuild(fresh, RebuildGraphs)
		if err != nil {
			t.Errorf("rebuild %d: %v", i, err)
			break
		}
		mu.Lock()
		current = next
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
}

func BenchmarkDoCached(b *testing.B) {
	benchDo(b, true)
}

func BenchmarkDoUncached(b *testing.B) {
	benchDo(b, false)
}

// benchDo measures a repeated-query workload — the head-query pattern
// the cache exists for. The cached variant must beat the uncached one
// by ≥5× (acceptance criterion; in practice it is orders of magnitude).
func benchDo(b *testing.B, cached bool) {
	w := synth.Generate(synth.Config{Seed: 51, NumFacets: 6, NumUsers: 12, SessionsPerUser: 15})
	e, err := NewEngine(w.Log, Config{SkipPersonalization: true})
	if err != nil {
		b.Fatal(err)
	}
	if cached {
		e.EnableCache(1024, 0)
	}
	// The head of the query distribution: the five most frequent
	// queries, i.e. the traffic a production cache actually absorbs.
	type qf struct {
		q string
		n int
	}
	var freq []qf
	for q, n := range w.Log.QueryFrequency() {
		freq = append(freq, qf{q, n})
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].n != freq[j].n {
			return freq[i].n > freq[j].n
		}
		return freq[i].q < freq[j].q
	})
	if len(freq) > 5 {
		freq = freq[:5]
	}
	qs := make([]string, len(freq))
	for i, f := range freq {
		qs[i] = f.q
	}
	if len(qs) == 0 {
		b.Skip("no frequent queries")
	}
	at := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := SuggestRequest{Query: qs[i%len(qs)], At: at, K: 10, NoCache: !cached}
		if _, err := e.Do(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestZipfReplay replays a Zipf-distributed query workload — the shape
// of real suggestion traffic — against a cached engine and reports the
// hit rate and latency percentiles recorded in EXPERIMENTS.md. Run
// with -v to see the numbers.
func TestZipfReplay(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	e.EnableCache(4096, 0)
	users := w.UserIDs()

	// Rank the distinct queries by log frequency; the Zipf draw maps
	// rank 0 to the hottest query.
	type qf struct {
		q string
		n int
	}
	var freq []qf
	for q, n := range w.Log.QueryFrequency() {
		if _, ok := e.Rep().QueryID(q); ok {
			freq = append(freq, qf{q, n})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].n != freq[j].n {
			return freq[i].n > freq[j].n
		}
		return freq[i].q < freq[j].q
	})
	// Probe each candidate through the uncached path (cache stats
	// untouched) and keep only servable queries: a handful of known
	// queries are still unservable (degenerate compact neighborhoods).
	at := time.Now()
	var qs []string
	for _, f := range freq {
		if _, err := e.SuggestDiversified(f.q, nil, at, 10); err == nil {
			qs = append(qs, f.q)
		}
	}
	if len(qs) < 10 {
		t.Fatalf("only %d servable queries in fixture", len(qs))
	}

	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(len(qs)-1))
	percentile := func(lat []time.Duration, p float64) time.Duration {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[int(float64(len(lat)-1)*p)]
	}

	run := func(n int, noCache bool) (lats []time.Duration) {
		for i := 0; i < n; i++ {
			req := SuggestRequest{
				User:  users[rng.Intn(len(users))],
				Query: qs[zipf.Uint64()],
				At:    at, K: 10, NoCache: noCache,
			}
			s0 := time.Now()
			if _, err := e.Do(context.Background(), req); err != nil {
				t.Fatal(err)
			}
			lats = append(lats, time.Since(s0))
		}
		return lats
	}

	const n = 4000
	cached := run(n, false)
	st := e.Cache().Stats()
	uncached := run(400, true)

	hitRate := st.HitRate()
	t.Logf("zipf replay: %d requests over %d distinct queries (s=1.1)", n, len(qs))
	t.Logf("cache: hits=%d misses=%d coalesced=%d  hit rate %.1f%%",
		st.Hits, st.Misses, st.Coalesced, 100*hitRate)
	t.Logf("cached   p50=%v p99=%v", percentile(cached, 0.50), percentile(cached, 0.99))
	t.Logf("uncached p50=%v p99=%v", percentile(uncached, 0.50), percentile(uncached, 0.99))

	if hitRate < 0.5 {
		t.Errorf("hit rate %.2f on a Zipf workload: cache ineffective", hitRate)
	}
	if p50c, p50u := percentile(cached, 0.50), percentile(uncached, 0.50); p50c*5 > p50u {
		t.Errorf("cached p50 %v not ≥5× faster than uncached p50 %v", p50c, p50u)
	}
}
