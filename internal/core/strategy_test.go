package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/diversify"
	"repro/internal/hittingtime"
	"repro/internal/regularize"
)

// TestDefaultStrategyParity is the refactor's safety net: the engine
// with the registry default ("hitting") must produce bit-identical
// diversified lists to the pre-refactor hard-wired pipeline, which this
// test re-implements inline (resolve seeds → compact → Eq. 15 solve →
// relevance gate → walker.SelectDiverseCtx).
func TestDefaultStrategyParity(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	if e.DiversifyDefault() != diversify.Default {
		t.Fatalf("default strategy %q, want %q", e.DiversifyDefault(), diversify.Default)
	}
	at := time.Now()
	k := 8
	checked := 0
	for q := range w.Log.QueryFrequency() {
		if checked >= 5 {
			break
		}
		res, err := e.Do(context.Background(), SuggestRequest{Query: q, K: k, At: at})
		if errors.Is(err, ErrUnknownQuery) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		want, ok := legacyDiversify(t, e, q, at, k)
		if !ok {
			t.Fatalf("legacy pipeline could not serve %q but Do did", q)
		}
		if !reflect.DeepEqual(res.Diversified, want) {
			t.Fatalf("parity broken for %q:\n Do:     %v\n legacy: %v", q, res.Diversified, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no servable queries found")
	}
}

// legacyDiversify replays the pre-refactor diversification stage
// exactly: the same calls engine.go made before the Diversifier
// boundary existed.
func legacyDiversify(t *testing.T, e *Engine, query string, at time.Time, k int) ([]string, bool) {
	t.Helper()
	snap := e.snap.Load()
	seeds, _, nInput := resolveSeeds(snap.Rep, query, nil, at)
	if nInput == 0 {
		return nil, false
	}
	compact := snap.Rep.BuildCompact(seeds, e.cfg.Compact)
	if compact.Size() < 2 {
		return nil, false
	}
	seedLocals := make([]int, 0, len(seeds))
	inputSeeds := 0
	for i := range seeds {
		local, ok := compact.LocalOf[seeds[i]]
		if !ok {
			continue
		}
		seedLocals = append(seedLocals, local)
		if i < nInput {
			inputSeeds++
		}
	}
	if len(seedLocals) == 0 || inputSeeds == 0 {
		return nil, false
	}
	f0 := regularize.ContextVector(compact.Size(), seedLocals[0], nil, e.cfg.Regularize.Lambda)
	for i := 1; i < inputSeeds; i++ {
		f0[seedLocals[i]] = 1
	}
	reg, err := regularize.FirstCandidate(compact, f0, seedLocals, e.cfg.Regularize)
	if err != nil || reg.First < 0 {
		return nil, false
	}
	pf := e.cfg.PoolFactor
	if pf <= 0 {
		pf = 3
	}
	poolSize := pf * k
	if poolSize < 20 {
		poolSize = 20
	}
	ranked := reg.Rank(seedLocals)
	if poolSize > len(ranked) {
		poolSize = len(ranked)
	}
	walker := hittingtime.NewWalker(compact, e.cfg.Hitting)
	selected, err := walker.SelectDiverseCtx(context.Background(), reg.First, k, seedLocals, ranked[:poolSize])
	if err != nil {
		return nil, false
	}
	out := make([]string, len(selected))
	for i, s := range selected {
		out[i] = compact.QueryName(s)
	}
	return out, true
}

func TestUnknownStrategyError(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	_, err := e.Do(context.Background(), SuggestRequest{Query: pickQuery(t, w), K: 5, Strategy: "bogus"})
	if !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("err = %v, want ErrUnknownStrategy", err)
	}
	names := e.StrategyNames()
	if len(names) < 4 {
		t.Fatalf("StrategyNames() = %v, want the four registry strategies", names)
	}
}

// An empty Strategy and the default's explicit name must resolve to the
// same canonical name — and therefore the same cache entry.
func TestEmptyStrategySharesDefaultCacheEntry(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	e.EnableCache(64, 0)
	q := pickQuery(t, w)
	at := time.Now()

	res1, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 5, At: at})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Strategy != diversify.Default {
		t.Fatalf("resolved strategy %q, want %q", res1.Strategy, diversify.Default)
	}
	res2, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 5, At: at, Strategy: diversify.Default})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Fatal("explicit default name missed the cache entry the empty name created")
	}
	if !reflect.DeepEqual(res1.Diversified, res2.Diversified) {
		t.Fatal("shared entry served a different list")
	}
}

// TestStrategyCacheIsolation is the cache-poisoning guard: with the
// cache enabled, concurrent requests for different strategies — across
// engine generations (hot-swap clones share the cache) — must each get
// exactly the list their strategy computes, never another strategy's.
// Run under -race: the strategy table is shared across clones and the
// cache is shared across goroutines.
func TestStrategyCacheIsolation(t *testing.T) {
	w := testWorld(t)
	e1 := testEngine(t, w, true)
	e1.EnableCache(256, 0)
	e2 := e1.Clone() // next generation, shared cache — the hot-swap shape
	if e2.Generation() == e1.Generation() {
		t.Fatal("clone did not bump the generation")
	}
	q := pickQuery(t, w)
	at := time.Now()
	strategies := []string{"hitting", "mmr", "pfar", "relevance"}
	engines := []*Engine{e1, e2}

	// Ground truth per (engine, strategy), computed without the cache.
	truth := map[uint64]map[string][]string{}
	for _, e := range engines {
		truth[e.Generation()] = map[string][]string{}
		for _, s := range strategies {
			res, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 6, At: at, Strategy: s, NoCache: true})
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			truth[e.Generation()][s] = res.Diversified
		}
	}
	// The strategies must not all agree, or isolation would be vacuous.
	if reflect.DeepEqual(truth[e1.Generation()]["hitting"], truth[e1.Generation()]["relevance"]) &&
		reflect.DeepEqual(truth[e1.Generation()]["hitting"], truth[e1.Generation()]["mmr"]) {
		t.Log("warning: all strategies agree on this query; isolation check is weak")
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for round := 0; round < 4; round++ {
		for _, e := range engines {
			for _, s := range strategies {
				wg.Add(1)
				go func(e *Engine, s string) {
					defer wg.Done()
					res, err := e.Do(context.Background(), SuggestRequest{Query: q, K: 6, At: at, Strategy: s})
					if err != nil {
						errc <- err
						return
					}
					if res.Strategy != s {
						errc <- errors.New("response strategy " + res.Strategy + ", want " + s)
						return
					}
					if want := truth[e.Generation()][s]; !reflect.DeepEqual(res.Diversified, want) {
						errc <- errors.New("strategy " + s + " served another strategy's list")
					}
				}(e, s)
			}
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestAddDiversifier(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	if err := e.AddDiversifier(nil); err == nil {
		t.Error("nil diversifier accepted")
	}
	d, err := diversify.New(diversify.Fallback, diversify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddDiversifier(d); err == nil {
		t.Error("duplicate name accepted")
	}
}
