// Package core wires the three PQS-DA components — the multi-bipartite
// query-log representation, the two-phase diversification and the
// UPM-based personalization — into one query-suggestion engine (the
// paper's Fig. 1 architecture).
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/bipartite"
	"repro/internal/hittingtime"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/regularize"
	"repro/internal/suggestcache"
	"repro/internal/topicmodel"
)

// Config assembles the tunables of every stage. Zero values select the
// defaults of the respective packages.
type Config struct {
	// Weighting selects raw or cf·iqf edge weights (default CFIQF — the
	// configuration the paper adopts after Fig. 3's comparison).
	Weighting bipartite.Weighting
	// Sessionizer controls session segmentation.
	Sessionizer querylog.SessionizerConfig
	// Compact controls the compact-representation budget ℚ.
	Compact bipartite.CompactConfig
	// Regularize controls Eq. 15.
	Regularize regularize.Config
	// Hitting controls the cross-bipartite hitting time.
	Hitting hittingtime.Config
	// UPM controls offline user profiling. Ignored when
	// SkipPersonalization is set.
	UPM topicmodel.UPMConfig
	// ScoreMode selects the Eq. 31 variant (default Posterior).
	ScoreMode profile.ScoreMode
	// SkipPersonalization builds a diversification-only engine (the
	// intermediate system evaluated in Section VI-B).
	SkipPersonalization bool
	// PoolFactor scales the relevance gate: diversification may only
	// pick from the top PoolFactor·k queries by regularization score
	// (default 3). Larger values favor diversity, smaller ones
	// relevance.
	PoolFactor int
}

// Engine is a ready-to-serve PQS-DA instance.
type Engine struct {
	cfg      Config
	Log      *querylog.Log
	Sessions []querylog.Session
	Rep      *bipartite.Representation
	Corpus   *topicmodel.Corpus
	Profiles *profile.Store // nil when personalization is skipped

	// generation identifies this engine snapshot for cache keying:
	// stamped at build, bumped by Clone. Immutable afterwards, so the
	// lock-free serving path reads it without synchronization.
	generation uint64
	// cache, when attached (EnableCache), memoizes diversified lists
	// keyed by (generation, query, context fingerprint, k). Shared by
	// clones — generation keying handles invalidation across swaps.
	cache *suggestcache.Cache[Result]
	// cgSolves counts Eq. 15 CG solves run by this instance (cache
	// effectiveness ground truth; see SolveCount).
	cgSolves atomic.Int64

	// dirty counts entries ingested since the last build/Refresh.
	dirty int
}

// Result is one suggestion run with its intermediate products and
// timing breakdown (the latter feeds the paper's Fig. 7).
type Result struct {
	// Suggestions is the final ranked list (personalized when the
	// engine has profiles).
	Suggestions []string
	// Diversified is the diversification-stage ranking (Algorithm 1
	// output) before personalization.
	Diversified []string
	// CompactSize is the number of queries in the compact
	// representation used.
	CompactSize int
	// SolveIterations is the CG iteration count of the Eq. 15 solve.
	SolveIterations int
	// SolveResidual is the final relative residual of the Eq. 15 solve
	// (zero on cache hits — this request ran no solve).
	SolveResidual float64
	// HittingRounds is the number of Algorithm-1 greedy rounds run
	// (zero on cache hits).
	HittingRounds int
	// CompactTime, SolveTime, HittingTime and PersonalizeTime are the
	// stage durations. On a cache hit the first three are zero — this
	// request did not run those stages.
	CompactTime, SolveTime, HittingTime, PersonalizeTime time.Duration
	// Generation is the engine snapshot that produced this result.
	Generation uint64
	// CacheHit reports that the diversified list came from the
	// suggestion cache (directly or by coalescing onto a concurrent
	// identical request) instead of a fresh pipeline run.
	CacheHit bool
}

// ErrUnknownQuery is returned when the input query has no node in the
// representation and shares no term with any known query.
var ErrUnknownQuery = errors.New("core: query unknown to the log representation")

// NewEngine builds the representation from the log and, unless
// personalization is skipped, trains the UPM for user profiles. The log
// should already be cleaned (querylog.Clean).
func NewEngine(l *querylog.Log, cfg Config) (*Engine, error) {
	if l.Len() == 0 {
		return nil, querylog.ErrEmptyLog
	}
	sessions := querylog.Sessionize(l, cfg.Sessionizer)
	e := &Engine{
		cfg:        cfg,
		Log:        l,
		Sessions:   sessions,
		Rep:        bipartite.BuildFromSessions(sessions, cfg.Weighting),
		generation: 1,
	}
	if !cfg.SkipPersonalization {
		e.Corpus = topicmodel.BuildCorpus(sessions, nil)
		upm := topicmodel.TrainUPM(e.Corpus, cfg.UPM)
		e.Profiles = profile.NewStore(upm, e.Corpus)
	}
	return e, nil
}

// SuggestDiversified runs the diversification component only: compact
// representation, Eq. 15 first candidate, cross-bipartite hitting-time
// selection. sctx lists the user's previous queries in the current
// session (most recent last); at is the submission time of the input
// query, used for the Eq. 7 decay.
func (e *Engine) SuggestDiversified(query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	return e.SuggestDiversifiedContext(context.Background(), query, sctx, at, k)
}

// SuggestDiversifiedContext is SuggestDiversified with request-scoped
// cancellation, threaded into the Eq. 15 CG solve and the hitting-time
// greedy loop. On deadline overrun the returned error wraps ctx.Err()
// and the Result keeps the stage timings completed so far, so callers
// can report partial progress.
func (e *Engine) SuggestDiversifiedContext(ctx context.Context, query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	var res Result
	if k <= 0 {
		return res, fmt.Errorf("core: k = %d", k)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	seeds, seedTimes, nInput := e.resolveSeeds(query, sctx, at)
	if nInput == 0 {
		return res, ErrUnknownQuery
	}

	t0 := time.Now()
	sp := obs.StartSpan(ctx, "compact")
	compact := e.Rep.BuildCompact(seeds, e.cfg.Compact)
	res.CompactTime = time.Since(t0)
	res.CompactSize = compact.Size()
	sp.SetAttr("seeds", len(seeds))
	sp.SetAttr("inputSeeds", nInput)
	sp.SetAttr("size", compact.Size())
	sp.End()
	if compact.Size() < 2 {
		return res, ErrUnknownQuery
	}

	// Seed locals: the input-derived seeds first, then the search
	// context. Term-fallback seeds stand in for the input query itself,
	// so they must NOT enter the Eq. 7 context vector with a decay
	// weight — only true context entries (i ≥ nInput) do.
	seedLocals := make([]int, 0, len(seeds))
	var rctx []regularize.ContextEntry
	inputSeeds := 0
	for i := range seeds {
		local, ok := compact.LocalOf[seeds[i]]
		if !ok {
			continue
		}
		seedLocals = append(seedLocals, local)
		if i < nInput {
			inputSeeds++
		} else {
			rctx = append(rctx, regularize.ContextEntry{Local: local, Before: seedTimes[i]})
		}
	}
	// Every seed may miss the compact representation (e.g. a degenerate
	// budget); indexing seedLocals[0] would panic, and without an
	// input-derived seed F⁰ has no anchor — the query is unservable.
	if len(seedLocals) == 0 || inputSeeds == 0 {
		return res, ErrUnknownQuery
	}
	f0 := regularize.ContextVector(compact.Size(), seedLocals[0], rctx, e.cfg.Regularize.Lambda)
	// Additional fallback seeds share the anchor weight 1 (they are
	// alternates for the input query, not decayed context).
	for i := 1; i < inputSeeds; i++ {
		f0[seedLocals[i]] = 1
	}

	t0 = time.Now()
	sp = obs.StartSpan(ctx, "solve")
	e.cgSolves.Add(1)
	reg, err := regularize.FirstCandidateCtx(ctx, compact, f0, seedLocals, e.cfg.Regularize)
	res.SolveTime = time.Since(t0)
	res.SolveIterations = reg.Iterations
	res.SolveResidual = reg.Residual
	sp.SetAttr("cgIterations", reg.Iterations)
	sp.SetAttr("residual", reg.Residual)
	sp.End()
	if err != nil {
		return res, err
	}
	if reg.First < 0 {
		return res, ErrUnknownQuery
	}

	// Relevance gate: diversification picks only from the queries the
	// regularization stage scored highest, so coverage of other facets
	// never costs unrelated suggestions.
	pf := e.cfg.PoolFactor
	if pf <= 0 {
		pf = 3
	}
	poolSize := pf * k
	if poolSize < 20 {
		poolSize = 20
	}
	ranked := reg.Rank(seedLocals)
	if poolSize > len(ranked) {
		poolSize = len(ranked)
	}
	pool := ranked[:poolSize]

	t0 = time.Now()
	sp = obs.StartSpan(ctx, "hitting")
	walker := hittingtime.NewWalker(compact, e.cfg.Hitting)
	selected, herr := walker.SelectDiverseCtx(ctx, reg.First, k, seedLocals, pool)
	res.HittingTime = time.Since(t0)
	if n := len(selected); n > 0 {
		res.HittingRounds = n - 1
	}
	sp.SetAttr("rounds", res.HittingRounds)
	sp.SetAttr("selected", len(selected))
	sp.SetAttr("poolSize", len(pool))
	sp.End()

	res.Diversified = make([]string, len(selected))
	for i, s := range selected {
		res.Diversified[i] = compact.QueryName(s)
	}
	res.Suggestions = res.Diversified
	return res, herr
}

// Suggest runs the full pipeline: diversification followed by
// personalized re-ranking (preference scores + Borda aggregation) when
// the engine has profiles and knows the user.
//
// Deprecated: use Do with a SuggestRequest; the positional form is kept
// as a thin wrapper for source compatibility.
func (e *Engine) Suggest(userID, query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	return e.Do(context.Background(), SuggestRequest{User: userID, Query: query, Context: sctx, At: at, K: k})
}

// SuggestContext is Suggest with request-scoped cancellation threaded
// through every stage (see SuggestDiversifiedContext).
//
// Deprecated: use Do with a SuggestRequest; the positional form is kept
// as a thin wrapper for source compatibility.
func (e *Engine) SuggestContext(ctx context.Context, userID, query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	return e.Do(ctx, SuggestRequest{User: userID, Query: query, Context: sctx, At: at, K: k})
}

// LearnUser folds a (new or returning) user's search history into the
// trained profiles WITHOUT retraining the UPM: the user's sessions are
// Gibbs-sampled against the learned global topics (see
// topicmodel.UPM.FoldIn). Subsequent Suggest calls for this user are
// personalized. It returns an error when the engine has no profiles.
func (e *Engine) LearnUser(userID string, entries []querylog.Entry) error {
	if e.Profiles == nil {
		return errors.New("core: engine built without personalization")
	}
	if len(entries) == 0 {
		return errors.New("core: no entries to learn from")
	}
	l := &querylog.Log{}
	for _, en := range entries {
		en.UserID = userID
		l.Append(en)
	}
	sessions := querylog.Sessionize(l, e.cfg.Sessionizer)
	model := topicmodel.SessionsForFoldIn(e.Corpus, sessions, nil)
	e.Profiles.UPM().FoldIn(userID, model, 0, e.cfg.UPM.Seed)
	return nil
}

// Personalize re-ranks an existing candidate list for a user: Borda
// aggregation of the original (relevance/diversity) order with the
// preference order (Section V-B). Without profiles or for unknown
// users it returns the input order.
func (e *Engine) Personalize(userID string, candidates []string) []string {
	if e.Profiles == nil || e.Profiles.Theta(userID) == nil {
		return candidates
	}
	prefRank := e.Profiles.RankByPreference(userID, candidates, e.cfg.ScoreMode)
	return profile.BordaAggregate(candidates, prefRank)
}

// resolveSeeds maps the input query and its context to representation
// query IDs plus each context entry's elapsed time before the input.
// Unknown input queries fall back to term-sharing queries so cold
// queries still get served. nInput reports how many leading seeds are
// derived from the input query itself (1 for a known query, up to 3
// term-fallback stand-ins otherwise) — the rest are search context.
func (e *Engine) resolveSeeds(query string, sctx []querylog.Entry, at time.Time) (seeds []int, times []time.Duration, nInput int) {
	if id, ok := e.Rep.QueryID(query); ok {
		seeds = append(seeds, id)
		times = append(times, 0)
	} else {
		for _, id := range e.termFallbackSeeds(query, 3) {
			seeds = append(seeds, id)
			times = append(times, 0)
		}
	}
	nInput = len(seeds)
	for _, c := range sctx {
		if id, ok := e.Rep.QueryID(c.Query); ok {
			seeds = append(seeds, id)
			dt := at.Sub(c.Time)
			if dt < 0 {
				dt = 0
			}
			times = append(times, dt)
		}
	}
	return seeds, times, nInput
}

// termFallbackSeeds finds up to n known queries sharing terms with an
// unknown input query, preferring those sharing more weight. The
// term→query adjacency is memoized on the representation, so cold
// queries cost one sparse-row scan per token instead of a full
// transpose per request.
func (e *Engine) termFallbackSeeds(query string, n int) []int {
	scores := make(map[int]float64)
	wT := e.Rep.WTransposed(bipartite.ViewTerm)
	for _, tok := range querylog.Tokenize(query) {
		t, ok := e.Rep.Objects[bipartite.ViewTerm].Lookup(tok)
		if !ok {
			continue
		}
		wT.Row(t, func(q int, v float64) {
			scores[q] += v
		})
	}
	type cand struct {
		q int
		s float64
	}
	cands := make([]cand, 0, len(scores))
	for q, s := range scores {
		cands = append(cands, cand{q, s})
	}
	// Highest shared weight first; ties break toward the smaller query
	// id so the order is deterministic.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].q < cands[j].q
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].q
	}
	return out
}
