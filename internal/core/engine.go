// Package core wires the three PQS-DA components — the multi-bipartite
// query-log representation, the two-phase diversification and the
// UPM-based personalization — into one query-suggestion engine (the
// paper's Fig. 1 architecture).
//
// The engine is a coordinator around an immutable serving snapshot
// (internal/snapshot): requests load the snapshot once and run entirely
// on it, while mutation (Ingest/Refresh/LearnUser) derives the NEXT
// snapshot and swaps it in atomically. The raw log lives in an
// append-only list of sealed segments, which is what lets Refresh build
// incrementally: entries past the snapshot's segment coverage are the
// delta.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/bipartite"
	"repro/internal/diversify"
	"repro/internal/hittingtime"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/regularize"
	"repro/internal/snapshot"
	"repro/internal/suggestcache"
	"repro/internal/topicmodel"
)

// Config assembles the tunables of every stage. Zero values select the
// defaults of the respective packages.
type Config struct {
	// Weighting selects raw or cf·iqf edge weights (default CFIQF — the
	// configuration the paper adopts after Fig. 3's comparison).
	Weighting bipartite.Weighting
	// Sessionizer controls session segmentation.
	Sessionizer querylog.SessionizerConfig
	// Compact controls the compact-representation budget ℚ.
	Compact bipartite.CompactConfig
	// Regularize controls Eq. 15.
	Regularize regularize.Config
	// Hitting controls the cross-bipartite hitting time.
	Hitting hittingtime.Config
	// Diversify selects the default diversification strategy and tunes
	// the non-default selectors (see internal/diversify). The zero
	// value serves the paper's hitting-time selector.
	Diversify diversify.Config
	// UPM controls offline user profiling. Ignored when
	// SkipPersonalization is set.
	UPM topicmodel.UPMConfig
	// ScoreMode selects the Eq. 31 variant (default Posterior).
	ScoreMode profile.ScoreMode
	// SkipPersonalization builds a diversification-only engine (the
	// intermediate system evaluated in Section VI-B).
	SkipPersonalization bool
	// PoolFactor scales the relevance gate: diversification may only
	// pick from the top PoolFactor·k queries by regularization score
	// (default 3). Larger values favor diversity, smaller ones
	// relevance.
	PoolFactor int
	// Strategy selects how Refresh rebuilds the representation: a full
	// rebuild over the whole log (default) or an incremental delta
	// build over the entries ingested since the last build. The two
	// produce bit-identical representations; delta is much faster for
	// small deltas.
	Strategy RefreshStrategy
	// CompactCache bounds the engine's LRU of built compact
	// representations, keyed by (generation, seed IDs). Compacts are
	// pure functions of the snapshot and seed set, so reuse is
	// bit-identical; a hit skips the representation carving AND every
	// memoized derivation on it (normalized affinities, the Eq. 15
	// system, the walker transition) — the bulk of an uncached
	// request. 0 selects the default (128 entries); negative disables
	// the cache.
	CompactCache int
}

// Engine is a ready-to-serve PQS-DA instance.
type Engine struct {
	cfg Config

	// snap is the immutable serving snapshot. The lock-free serving
	// path loads it exactly once per request; mutators build the next
	// snapshot off to the side and Store it.
	snap atomic.Pointer[snapshot.Snapshot]
	// segs is the append-only sealed-segment log. The snapshot records
	// how many segments it covers; everything after that boundary is
	// the pending delta for the next Refresh.
	segs *querylog.SegmentList
	// hasLog is false for engines deserialized from disk — they carry
	// no raw entries, so Refresh is unsupported.
	hasLog bool
	// loaded describes the wire image a deserialized engine came from
	// (zero for engines built from a log); see LoadedImage.
	loaded loadedInfo

	// wireImg caches the snapwire encoding of the current snapshot,
	// keyed by snapshot pointer (see WireImage).
	wireImg atomic.Pointer[wireImage]

	// cache, when attached (EnableCache), memoizes diversified lists
	// keyed by (generation, query, context fingerprint, k). Shared by
	// clones — generation keying handles invalidation across swaps.
	cache *suggestcache.Cache[Result]
	// compacts is the generation-keyed LRU of built compact
	// representations (see compactcache.go). Always attached unless
	// Config.CompactCache is negative; shared by clones like the
	// suggestion cache.
	compacts *compactCache
	// cgSolves counts Eq. 15 CG solves run by this instance (cache
	// effectiveness ground truth; see SolveCount).
	cgSolves atomic.Int64

	// strategies is the servable diversification-strategy table: one
	// instance per registered strategy (plus AddDiversifier extras),
	// built once at construction and read-only while serving. Shared
	// by clones.
	strategies map[string]diversify.Diversifier
	// defaultStrategy is the canonical name requests with an empty
	// Strategy resolve to.
	defaultStrategy string

	// dirty counts entries ingested since the last build/Refresh. The
	// sealed segments are the source of truth; Refresh clamps a
	// drifted counter back to them and counts the event (DirtyClamps)
	// instead of silently mis-sizing the fold-in window.
	dirty int
	// dirtyClamps counts dirty-counter drift corrections.
	dirtyClamps atomic.Int64
}

// Result is one suggestion run with its intermediate products and
// timing breakdown (the latter feeds the paper's Fig. 7).
type Result struct {
	// Suggestions is the final ranked list (personalized when the
	// engine has profiles).
	Suggestions []string
	// Diversified is the diversification-stage ranking (Algorithm 1
	// output) before personalization.
	Diversified []string
	// DiversifiedIDs are the snapshot symbol-table ids of Diversified
	// (parallel slice; nil when the snapshot carries no symbol table).
	// Cached alongside the list, so personalization — on fresh runs and
	// cache hits alike — re-ranks in index space with the snapshot's
	// precomputed tokens instead of re-tokenizing every candidate.
	DiversifiedIDs []uint32
	// CompactSize is the number of queries in the compact
	// representation used.
	CompactSize int
	// SolveIterations is the CG iteration count of the Eq. 15 solve.
	SolveIterations int
	// SolveResidual is the final relative residual of the Eq. 15 solve
	// (zero on cache hits — this request ran no solve).
	SolveResidual float64
	// SolveBatchSize is how many right-hand sides the Eq. 15 solve that
	// produced this list was blocked with: 1 on the single-request path,
	// the solve-group size under DoBatch, 0 on cache hits.
	SolveBatchSize int
	// SolveRefinements counts float32 inner solves when the engine runs
	// the solver in reduced precision (see sparse.SolveOptions.Precision).
	SolveRefinements int
	// SolveFellBack reports that the reduced-precision solve stalled and
	// finished in float64 via the iterative-refinement fallback.
	SolveFellBack bool
	// HittingRounds is the number of Algorithm-1 greedy rounds run
	// (zero on cache hits).
	HittingRounds int
	// CompactTime, SolveTime, HittingTime and PersonalizeTime are the
	// stage durations. On a cache hit the first three are zero — this
	// request did not run those stages.
	CompactTime, SolveTime, HittingTime, PersonalizeTime time.Duration
	// Generation is the engine snapshot that produced this result.
	Generation uint64
	// Strategy is the canonical name of the diversification strategy
	// that produced (or would address the cache entry of) Diversified.
	Strategy string
	// CacheHit reports that the diversified list came from the
	// suggestion cache (directly or by coalescing onto a concurrent
	// identical request) instead of a fresh pipeline run.
	CacheHit bool
}

// ErrUnknownQuery is returned when the input query has no node in the
// representation and shares no term with any known query.
var ErrUnknownQuery = errors.New("core: query unknown to the log representation")

// NewEngine builds the representation from the log and, unless
// personalization is skipped, trains the UPM for user profiles. The log
// should already be cleaned (querylog.Clean); it is sorted in place as
// a side effect of sessionization.
func NewEngine(l *querylog.Log, cfg Config) (*Engine, error) {
	if l.Len() == 0 {
		return nil, querylog.ErrEmptyLog
	}
	sessions := querylog.Sessionize(l, cfg.Sessionizer)
	e := &Engine{cfg: cfg, segs: &querylog.SegmentList{}, hasLog: true, compacts: newCompactCache(cfg.CompactCache)}
	if err := e.initStrategies(); err != nil {
		return nil, err
	}
	e.segs.Append(l.Entries)
	snap := e.builder().FromSessions(sessions, l.Len(), e.segs.NumSegments())
	snap.Generation = 1
	if !cfg.SkipPersonalization {
		snap.Corpus = topicmodel.BuildCorpus(sessions, nil)
		upm := topicmodel.TrainUPM(snap.Corpus, cfg.UPM)
		snap.Profiles = profile.NewStore(upm, snap.Corpus)
	}
	e.snap.Store(snap)
	return e, nil
}

// builder returns the snapshot builder configured for this engine.
func (e *Engine) builder() snapshot.Builder {
	return snapshot.Builder{Sessionizer: e.cfg.Sessionizer, Weighting: e.cfg.Weighting}
}

// Snapshot returns the current immutable serving snapshot. Holders see
// a consistent — possibly slightly stale after a swap — state; the
// snapshot's contents never change.
func (e *Engine) Snapshot() *snapshot.Snapshot { return e.snap.Load() }

// Rep returns the current snapshot's multi-bipartite representation.
func (e *Engine) Rep() *bipartite.Representation { return e.snap.Load().Rep }

// Sessions returns the current snapshot's canonical session list
// (read-only).
func (e *Engine) Sessions() []querylog.Session { return e.snap.Load().Sessions }

// Corpus returns the current snapshot's training corpus (nil when
// personalization is skipped or the engine was loaded from disk
// without one).
func (e *Engine) Corpus() *topicmodel.Corpus { return e.snap.Load().Corpus }

// Profiles returns the current snapshot's profile store, nil when
// personalization is skipped.
func (e *Engine) Profiles() *profile.Store { return e.snap.Load().Profiles }

// Log returns a fresh copy of the full append-only log (built + pending
// entries). It is a flatten of the sealed segments: O(n), intended for
// tooling and tests, not the serving path.
func (e *Engine) Log() *querylog.Log { return e.segs.Flatten() }

// LastBuild reports how the current snapshot was built (mode, delta
// size, duration) — the server surfaces this on /v1/stats and in the
// refresh response.
func (e *Engine) LastBuild() snapshot.Stats { return e.snap.Load().Stats }

// Strategy returns the configured default refresh build strategy.
func (e *Engine) Strategy() RefreshStrategy { return e.cfg.Strategy }

// SuggestDiversified runs the diversification component only: compact
// representation, Eq. 15 first candidate, cross-bipartite hitting-time
// selection. sctx lists the user's previous queries in the current
// session (most recent last); at is the submission time of the input
// query, used for the Eq. 7 decay.
func (e *Engine) SuggestDiversified(query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	return e.SuggestDiversifiedContext(context.Background(), query, sctx, at, k)
}

// SuggestDiversifiedContext is SuggestDiversified with request-scoped
// cancellation, threaded into the Eq. 15 CG solve and the hitting-time
// greedy loop. On deadline overrun the returned error wraps ctx.Err()
// and the Result keeps the stage timings completed so far, so callers
// can report partial progress.
func (e *Engine) SuggestDiversifiedContext(ctx context.Context, query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	name, div, err := e.resolveStrategy("")
	if err != nil {
		return Result{}, err
	}
	return e.suggestDiversifiedOn(ctx, e.snap.Load(), div, name, query, sctx, at, k)
}

// suggestDiversifiedOn is the pipeline body, pinned to one snapshot so
// a request never mixes state across a concurrent hot-swap. div is the
// resolved diversification strategy (selection stage); name its
// canonical registry name.
func (e *Engine) suggestDiversifiedOn(ctx context.Context, snap *snapshot.Snapshot, div diversify.Diversifier, name string, query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	res := Result{Strategy: name}
	if k <= 0 {
		return res, fmt.Errorf("core: k = %d", k)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	seeds, seedTimes, nInput := resolveSeeds(snap.Rep, query, sctx, at)
	if nInput == 0 {
		return res, ErrUnknownQuery
	}

	t0 := time.Now()
	sp := obs.StartSpan(ctx, "compact")
	compact, compactCached := e.compactFor(snap, seeds)
	res.CompactTime = time.Since(t0)
	res.CompactSize = compact.Size()
	sp.SetAttr("seeds", len(seeds))
	sp.SetAttr("inputSeeds", nInput)
	sp.SetAttr("size", compact.Size())
	sp.SetAttr("cached", compactCached)
	sp.End()
	if compact.Size() < 2 {
		return res, ErrUnknownQuery
	}

	seedLocals, f0, ok := seedVector(compact, seeds, seedTimes, nInput, e.cfg.Regularize.Lambda)
	if !ok {
		return res, ErrUnknownQuery
	}

	t0 = time.Now()
	sp = obs.StartSpan(ctx, "solve")
	e.cgSolves.Add(1)
	reg, err := regularize.FirstCandidateCtx(ctx, compact, f0, seedLocals, e.cfg.Regularize)
	res.SolveTime = time.Since(t0)
	res.SolveIterations = reg.Iterations
	res.SolveResidual = reg.Residual
	res.SolveBatchSize = 1
	res.SolveRefinements = reg.Refinements
	res.SolveFellBack = reg.FellBack
	sp.SetAttr("cgIterations", reg.Iterations)
	sp.SetAttr("residual", reg.Residual)
	sp.End()
	if err != nil {
		return res, err
	}
	if reg.First < 0 {
		return res, ErrUnknownQuery
	}
	herr := e.runSelection(ctx, snap, compact, div, name, query, k, seedLocals, reg, &res)
	return res, herr
}

// seedVector maps the resolved seeds onto a built compact and assembles
// the Eq. 7 context vector F⁰. Seed locals are the input-derived seeds
// first, then the search context. Term-fallback seeds stand in for the
// input query itself, so they must NOT enter F⁰ with a decay weight —
// only true context entries (i ≥ nInput) do; additional fallback seeds
// share the anchor weight 1 (alternates for the input, not context).
//
// ok is false when no input-derived seed landed in the compact (every
// seed may miss it under a degenerate budget) — without an anchor F⁰
// the query is unservable.
func seedVector(compact *bipartite.Compact, seeds []int, seedTimes []time.Duration, nInput int, lambda float64) (seedLocals []int, f0 []float64, ok bool) {
	seedLocals = make([]int, 0, len(seeds))
	var rctx []regularize.ContextEntry
	inputSeeds := 0
	for i := range seeds {
		local, in := compact.LocalOf[seeds[i]]
		if !in {
			continue
		}
		seedLocals = append(seedLocals, local)
		if i < nInput {
			inputSeeds++
		} else {
			rctx = append(rctx, regularize.ContextEntry{Local: local, Before: seedTimes[i]})
		}
	}
	if len(seedLocals) == 0 || inputSeeds == 0 {
		return nil, nil, false
	}
	f0 = regularize.ContextVector(compact.Size(), seedLocals[0], rctx, lambda)
	for i := 1; i < inputSeeds; i++ {
		f0[seedLocals[i]] = 1
	}
	return seedLocals, f0, true
}

// runSelection is the pipeline tail shared by the single-request path
// and DoBatch: the relevance gate over the solved F*, the
// diversification strategy's selection, and the naming of the selected
// compact locals (strings + symbol ids). It fills the selection fields
// of res and returns the strategy's error, if any.
func (e *Engine) runSelection(ctx context.Context, snap *snapshot.Snapshot, compact *bipartite.Compact, div diversify.Diversifier, name, query string, k int, seedLocals []int, reg regularize.Result, res *Result) error {
	// Relevance gate: diversification picks only from the queries the
	// regularization stage scored highest, so coverage of other facets
	// never costs unrelated suggestions.
	pf := e.cfg.PoolFactor
	if pf <= 0 {
		pf = 3
	}
	poolSize := pf * k
	if poolSize < 20 {
		poolSize = 20
	}
	ranked := reg.Rank(seedLocals)
	if poolSize > len(ranked) {
		poolSize = len(ranked)
	}
	pool := ranked[:poolSize]

	// Selection stage: the strategy picks k diverse suggestions from
	// the relevance-gated pool. The stage keeps its historical span and
	// histogram name ("hitting" — the paper's selector) for dashboard
	// continuity; the strategy attr and the per-strategy server metrics
	// tell the selectors apart.
	t0 := time.Now()
	sp := obs.StartSpan(ctx, "hitting")
	sp.SetAttr("strategy", name)
	topicsOf, topicWeights := topicsOn(snap, compact)
	selected, herr := div.Select(ctx, diversify.Request{
		Compact:      compact,
		Query:        query,
		First:        reg.First,
		K:            k,
		Excluded:     seedLocals,
		Pool:         pool,
		Relevance:    reg.F,
		TopicsOf:     topicsOf,
		TopicWeights: topicWeights,
	})
	res.HittingTime = time.Since(t0)
	if n := len(selected); n > 0 {
		res.HittingRounds = n - 1
	}
	sp.SetAttr("rounds", res.HittingRounds)
	sp.SetAttr("selected", len(selected))
	sp.SetAttr("poolSize", len(pool))
	sp.End()

	res.Diversified = make([]string, len(selected))
	for i, s := range selected {
		res.Diversified[i] = compact.QueryName(s)
	}
	if snap.Symbols != nil {
		res.DiversifiedIDs = make([]uint32, len(selected))
		for i, s := range selected {
			res.DiversifiedIDs[i] = uint32(compact.QueryIDs[s])
		}
	}
	res.Suggestions = res.Diversified
	return herr
}

// Suggest runs the full pipeline: diversification followed by
// personalized re-ranking (preference scores + Borda aggregation) when
// the engine has profiles and knows the user.
//
// Deprecated: use Do with a SuggestRequest; the positional form is kept
// as a thin wrapper for source compatibility.
func (e *Engine) Suggest(userID, query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	return e.Do(context.Background(), SuggestRequest{User: userID, Query: query, Context: sctx, At: at, K: k})
}

// SuggestContext is Suggest with request-scoped cancellation threaded
// through every stage (see SuggestDiversifiedContext).
//
// Deprecated: use Do with a SuggestRequest; the positional form is kept
// as a thin wrapper for source compatibility.
func (e *Engine) SuggestContext(ctx context.Context, userID, query string, sctx []querylog.Entry, at time.Time, k int) (Result, error) {
	return e.Do(ctx, SuggestRequest{User: userID, Query: query, Context: sctx, At: at, K: k})
}

// LearnUser folds a (new or returning) user's search history into the
// trained profiles WITHOUT retraining the UPM: the user's sessions are
// Gibbs-sampled against the learned global topics (see
// topicmodel.UPM.FoldIn). The fold-in runs on a clone of the UPM and is
// published as a new snapshot (same generation — learning does not
// invalidate the suggestion cache, which stores user-independent
// lists), so concurrent Suggest calls never observe a half-updated
// model. It returns an error when the engine has no profiles.
func (e *Engine) LearnUser(userID string, entries []querylog.Entry) error {
	prev := e.snap.Load()
	if prev.Profiles == nil {
		return errors.New("core: engine built without personalization")
	}
	if len(entries) == 0 {
		return errors.New("core: no entries to learn from")
	}
	l := &querylog.Log{}
	for _, en := range entries {
		en.UserID = userID
		l.Append(en)
	}
	sessions := querylog.Sessionize(l, e.cfg.Sessionizer)
	model := topicmodel.SessionsForFoldIn(prev.Corpus, sessions, nil)
	upm := prev.Profiles.UPM().Clone()
	upm.FoldIn(userID, model, 0, e.cfg.UPM.Seed)
	next := *prev
	next.Profiles = profile.NewStore(upm, prev.Corpus)
	e.snap.Store(&next)
	return nil
}

// Personalize re-ranks an existing candidate list for a user: Borda
// aggregation of the original (relevance/diversity) order with the
// preference order (Section V-B). Without profiles or for unknown
// users it returns the input order.
func (e *Engine) Personalize(userID string, candidates []string) []string {
	return personalizeOn(e.snap.Load(), e.cfg.ScoreMode, userID, candidates)
}

func personalizeOn(snap *snapshot.Snapshot, mode profile.ScoreMode, userID string, candidates []string) []string {
	if snap.Profiles == nil || snap.Profiles.Theta(userID) == nil {
		return candidates
	}
	prefRank := snap.Profiles.RankByPreference(userID, candidates, mode)
	return profile.BordaAggregate(candidates, prefRank)
}

// personalizeResultOn is personalizeOn for a pipeline Result: when the
// result carries symbol ids (fresh runs and cache hits alike), the
// preference ranking and Borda merge run in index space against the
// snapshot's precomputed token lists — no per-candidate tokenization and
// no string-keyed maps. Results without ids (hand-assembled snapshots)
// take the string path.
func personalizeResultOn(snap *snapshot.Snapshot, mode profile.ScoreMode, userID string, res *Result) []string {
	if snap.Symbols == nil || len(res.DiversifiedIDs) != len(res.Diversified) || len(res.Diversified) == 0 {
		return personalizeOn(snap, mode, userID, res.Diversified)
	}
	if snap.Profiles == nil || snap.Profiles.Theta(userID) == nil {
		return res.Diversified
	}
	toks := make([][]string, len(res.DiversifiedIDs))
	for i, id := range res.DiversifiedIDs {
		toks[i] = snap.Symbols.Tokens(id)
	}
	perm := snap.Profiles.PreferencePerm(userID, toks, mode)
	merged := profile.BordaMergePerm(perm)
	out := make([]string, len(merged))
	for i, j := range merged {
		out[i] = res.Diversified[j]
	}
	return out
}

// resolveSeeds maps the input query and its context to representation
// query IDs plus each context entry's elapsed time before the input.
// Unknown input queries fall back to term-sharing queries so cold
// queries still get served. nInput reports how many leading seeds are
// derived from the input query itself (1 for a known query, up to 3
// term-fallback stand-ins otherwise) — the rest are search context.
func resolveSeeds(rep *bipartite.Representation, query string, sctx []querylog.Entry, at time.Time) (seeds []int, times []time.Duration, nInput int) {
	if id, ok := rep.QueryID(query); ok {
		seeds = append(seeds, id)
		times = append(times, 0)
	} else {
		for _, id := range termFallbackSeeds(rep, query, 3) {
			seeds = append(seeds, id)
			times = append(times, 0)
		}
	}
	nInput = len(seeds)
	for _, c := range sctx {
		if id, ok := rep.QueryID(c.Query); ok {
			seeds = append(seeds, id)
			dt := at.Sub(c.Time)
			if dt < 0 {
				dt = 0
			}
			times = append(times, dt)
		}
	}
	return seeds, times, nInput
}

// termFallbackSeeds finds up to n known queries sharing terms with an
// unknown input query, preferring those sharing more weight. The
// term→query adjacency is memoized on the representation, so cold
// queries cost one sparse-row scan per token instead of a full
// transpose per request.
func termFallbackSeeds(rep *bipartite.Representation, query string, n int) []int {
	scores := make(map[int]float64)
	wT := rep.WTransposed(bipartite.ViewTerm)
	for _, tok := range querylog.Tokenize(query) {
		t, ok := rep.Objects[bipartite.ViewTerm].Lookup(tok)
		if !ok {
			continue
		}
		wT.Row(t, func(q int, v float64) {
			scores[q] += v
		})
	}
	type cand struct {
		q int
		s float64
	}
	cands := make([]cand, 0, len(scores))
	for q, s := range scores {
		cands = append(cands, cand{q, s})
	}
	// Highest shared weight first; ties break toward the smaller query
	// id so the order is deterministic.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].q < cands[j].q
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].q
	}
	return out
}
