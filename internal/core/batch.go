package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/querylog"
	"repro/internal/regularize"
	"repro/internal/snapshot"
	"repro/internal/suggestcache"
)

// DoBatch runs the suggestion pipeline for a batch of requests against
// ONE snapshot load, returning parallel result and error slices (a nil
// error slot means that item succeeded).
//
// The point of batching is solve sharing: cache misses whose requests
// resolve to the same seed set — same normalized query, same context
// queries — build one compact representation and run ONE blocked
// multi-RHS CG solve (sparse.SolveCGMulti) for all their Eq. 15 systems
// instead of one solve each, and a 64-item batch typically collapses to
// a handful of blocked solves. Within the batch, items with identical
// cache keys coalesce onto a single pipeline run even before the solve
// (NoCache items opt out of sharing, as on the single path).
//
// Per-item semantics match Do exactly: cache hits serve the stored list
// with zeroed stage timings, CachedOnly misses return ErrNotCached
// without computing, personalization runs per item on top of the shared
// diversified lists. Shared-stage timings (compact, solve) are reported
// on every item of a solve group — they are wall times of stages the
// item's result waited on, not exclusive per-item cost.
func (e *Engine) DoBatch(ctx context.Context, reqs []SuggestRequest) ([]Result, []error) {
	results := make([]Result, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return results, errs
	}
	now := time.Now()

	// One snapshot load for the whole batch: every item's cache keying,
	// solve and personalization read this value, so a concurrent
	// hot-swap can never split a batch across generations.
	snap := e.snap.Load()

	states := make([]batchItemState, len(reqs))

	// Phase 1 — validate, resolve strategies, consult the cache, and
	// coalesce batch-local duplicates.
	keyLeader := make(map[suggestcache.Key]int, len(reqs))
	for i, req := range reqs {
		st := &states[i]
		st.leader = i
		if req.K <= 0 {
			errs[i] = fmt.Errorf("core: k = %d", req.K)
			st.done = true
			continue
		}
		st.at = req.At
		if st.at.IsZero() {
			st.at = now
		}
		strategy, _, serr := e.resolveStrategy(req.Strategy)
		st.strategy = strategy
		if serr != nil {
			results[i] = Result{Generation: snap.Generation, Strategy: strategy}
			errs[i] = serr
			st.done = true
			continue
		}
		if e.cache != nil && !req.NoCache {
			st.key = e.cacheKey(snap, strategy, req, st.at)
			st.keyed = true
			if res, ok := e.cache.Get(st.key); ok {
				res.CompactTime, res.SolveTime, res.HittingTime = 0, 0, 0
				res.SolveBatchSize = 0
				res.CacheHit = true
				results[i] = res
				st.done = true
				continue
			}
		}
		if req.CachedOnly {
			results[i] = Result{Generation: snap.Generation, Strategy: strategy}
			errs[i] = ErrNotCached
			st.done = true
			continue
		}
		if st.keyed {
			if l, dup := keyLeader[st.key]; dup {
				st.leader = l // follower: copies the leader's list post-compute
				continue
			}
			keyLeader[st.key] = i
		}
	}

	// Phase 2 — group the computing leaders by solve signature. Two
	// requests share a signature when they resolve to the same seed set
	// (same normalized input query, same context query names): they
	// build the same compact representation and the same Eq. 15 system
	// matrix, differing only in the right-hand side F⁰ (context decay
	// times) — exactly the shape the multi-RHS kernel blocks.
	groups := make(map[string][]int)
	var order []string
	for i := range reqs {
		st := &states[i]
		if st.done || st.leader != i {
			continue
		}
		sig := SolveSignature(reqs[i])
		if _, seen := groups[sig]; !seen {
			order = append(order, sig)
		}
		groups[sig] = append(groups[sig], i)
	}

	for _, sig := range order {
		e.solveGroup(ctx, snap, reqs, states, groups[sig], results, errs)
	}

	// Phase 3 — fan batch-local duplicates out from their leaders and
	// personalize every successful item.
	for i, req := range reqs {
		st := &states[i]
		if !st.done && st.leader != i {
			l := st.leader
			if errs[l] != nil {
				results[i] = Result{Generation: snap.Generation, Strategy: st.strategy}
				errs[i] = errs[l]
				continue
			}
			res := results[l]
			// Same contract as a cache hit: the stage work belongs to
			// the leader; this item shared its result.
			res.CompactTime, res.SolveTime, res.HittingTime = 0, 0, 0
			res.SolveBatchSize = 0
			res.CacheHit = true
			results[i] = res
		}
		if errs[i] != nil {
			continue
		}
		res := &results[i]
		if !req.SkipPersonalization && snap.Profiles != nil {
			t0 := time.Now()
			res.Suggestions = personalizeResultOn(snap, e.cfg.ScoreMode, req.User, res)
			res.PersonalizeTime = time.Since(t0)
		} else {
			res.Suggestions = res.Diversified
			res.PersonalizeTime = 0
		}
	}
	return results, errs
}

// batchItemState is DoBatch's per-item bookkeeping.
type batchItemState struct {
	at       time.Time
	strategy string
	key      suggestcache.Key
	keyed    bool // key computed (cache attached, not NoCache)
	done     bool // result or error finalized pre-solve
	leader   int  // batch-local coalescing: index of identical keyed item, else own index
}

// solveGroup runs one solve group end to end: one compact build, one
// blocked multi-RHS Eq. 15 solve for every member's F⁰, then the
// per-item selection stage and cache insertion.
func (e *Engine) solveGroup(ctx context.Context, snap *snapshot.Snapshot, reqs []SuggestRequest, states []batchItemState, members []int, results []Result, errs []error) {
	fail := func(err error) {
		for _, i := range members {
			results[i] = Result{Generation: snap.Generation, Strategy: states[i].strategy}
			errs[i] = err
		}
	}

	// All members share a seed set by construction; resolve it from the
	// first member (times beyond nInput are per item and re-derived
	// below).
	lead := reqs[members[0]]
	seeds, _, nInput := resolveSeeds(snap.Rep, lead.Query, lead.Context, states[members[0]].at)
	if nInput == 0 {
		fail(ErrUnknownQuery)
		return
	}

	t0 := time.Now()
	sp := obs.StartSpan(ctx, "compact")
	compact, compactCached := e.compactFor(snap, seeds)
	compactTime := time.Since(t0)
	sp.SetAttr("seeds", len(seeds))
	sp.SetAttr("inputSeeds", nInput)
	sp.SetAttr("size", compact.Size())
	sp.SetAttr("batch", len(members))
	sp.SetAttr("cached", compactCached)
	sp.End()
	if compact.Size() < 2 {
		fail(ErrUnknownQuery)
		return
	}

	// Per-member F⁰: same anchor, per-item context decay times.
	f0s := make([][]float64, len(members))
	seedSets := make([][]int, len(members))
	var seedLocals []int
	for mi, i := range members {
		_, times, _ := resolveSeeds(snap.Rep, reqs[i].Query, reqs[i].Context, states[i].at)
		locals, f0, ok := seedVector(compact, seeds, times, nInput, e.cfg.Regularize.Lambda)
		if !ok {
			fail(ErrUnknownQuery)
			return
		}
		seedLocals = locals
		f0s[mi] = f0
		seedSets[mi] = locals
	}

	t0 = time.Now()
	sp = obs.StartSpan(ctx, "solve")
	sp.SetAttr("rhs", len(members))
	e.cgSolves.Add(1)
	regs, serr := regularize.FirstCandidatesCtx(ctx, compact, f0s, seedSets, e.cfg.Regularize)
	solveTime := time.Since(t0)
	sp.SetAttr("err", serr != nil)
	sp.End()
	if regs == nil {
		fail(serr)
		return
	}

	for mi, i := range members {
		reg := regs[mi]
		res := Result{
			Generation:       snap.Generation,
			Strategy:         states[i].strategy,
			CompactSize:      compact.Size(),
			CompactTime:      compactTime,
			SolveTime:        solveTime,
			SolveIterations:  reg.Iterations,
			SolveResidual:    reg.Residual,
			SolveBatchSize:   len(members),
			SolveRefinements: reg.Refinements,
			SolveFellBack:    reg.FellBack,
		}
		if reg.First < 0 {
			results[i] = res
			if serr != nil {
				errs[i] = serr
			} else {
				errs[i] = ErrUnknownQuery
			}
			continue
		}
		_, div, derr := e.resolveStrategy(states[i].strategy)
		if derr != nil { // unreachable: strategy resolved in phase 1
			results[i], errs[i] = res, derr
			continue
		}
		herr := e.runSelection(ctx, snap, compact, div, states[i].strategy, reqs[i].Query, reqs[i].K, seedLocals, reg, &res)
		results[i] = res
		if herr != nil {
			errs[i] = herr
			continue
		}
		if states[i].keyed {
			e.cache.Put(states[i].key, res)
		}
	}
}

// SolveSignature canonicalizes the part of a request that determines
// its seed set — and therefore its compact representation and Eq. 15
// system matrix. Requests with equal signatures are solved in one
// multi-RHS block by DoBatch; the server's batch endpoint uses the
// same signature to budget admission (one gate slot per solve group).
// The separator cannot occur in normalized queries.
func SolveSignature(req SuggestRequest) string {
	var b strings.Builder
	b.WriteString(querylog.NormalizeQuery(req.Query))
	for _, c := range req.Context {
		b.WriteByte('\x1e')
		b.WriteString(querylog.NormalizeQuery(c.Query))
	}
	return b.String()
}
