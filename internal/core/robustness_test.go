package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/synth"
)

// A log with no clicks at all: the URL view is empty, yet the engine
// must still diversify through the session and term views (the
// multi-bipartite robustness claim of Section III).
func TestEngineClicklessLog(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 71, NumFacets: 4, NumUsers: 8, SessionsPerUser: 12})
	stripped := &querylog.Log{}
	for _, e := range w.Log.Entries {
		e.ClickedURL = ""
		stripped.Append(e)
	}
	e, err := NewEngine(stripped, Config{
		Compact:             bipartite.CompactConfig{Budget: 40},
		SkipPersonalization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := ""
	for s := range stripped.QueryFrequency() {
		q = s
		break
	}
	res, err := e.SuggestDiversified(q, nil, time.Now(), 5)
	if err != nil {
		t.Fatalf("clickless log cannot suggest: %v", err)
	}
	if len(res.Diversified) == 0 {
		t.Fatal("no suggestions from session/term views alone")
	}
}

// One single user: personalization trains a one-document UPM and the
// pipeline still works end to end.
func TestEngineSingleUser(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 72, NumFacets: 3, NumUsers: 1, SessionsPerUser: 20})
	e, err := NewEngine(w.Log, Config{
		Compact: bipartite.CompactConfig{Budget: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := pickQuery(t, w)
	res, err := e.Suggest(w.UserIDs()[0], q, nil, time.Now(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("single-user engine returned nothing")
	}
}

// Serialization fidelity: an engine built from a TSV round-tripped log
// must produce identical suggestions (same seed, same data ⇒ same
// model).
func TestEngineTSVRoundTripFidelity(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 73, NumFacets: 4, NumUsers: 8, SessionsPerUser: 12})
	var buf bytes.Buffer
	if err := w.Log.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	reparsed, err := querylog.ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Compact: bipartite.CompactConfig{Budget: 40}, SkipPersonalization: true}
	e1, err := NewEngine(w.Log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(reparsed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := pickQuery(t, w)
	at := time.Now()
	r1, err1 := e1.SuggestDiversified(q, nil, at, 8)
	r2, err2 := e2.SuggestDiversified(q, nil, at, 8)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if len(r1.Diversified) != len(r2.Diversified) {
		t.Fatalf("lengths differ: %d vs %d", len(r1.Diversified), len(r2.Diversified))
	}
	for i := range r1.Diversified {
		if r1.Diversified[i] != r2.Diversified[i] {
			t.Fatalf("suggestion %d differs after round trip: %q vs %q", i, r1.Diversified[i], r2.Diversified[i])
		}
	}
}

// Empty-session-context robustness: passing context entries whose
// queries are unknown must not break anything.
func TestSuggestUnknownContext(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	q := pickQuery(t, w)
	ctx := []querylog.Entry{{UserID: "u", Query: "zzz not in log", Time: time.Now().Add(-time.Minute)}}
	res, err := e.SuggestDiversified(q, ctx, time.Now(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diversified) == 0 {
		t.Fatal("unknown context suppressed all suggestions")
	}
}
