package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/diversify"
	"repro/internal/querylog"
	"repro/internal/snapshot"
)

// ErrUnknownStrategy is returned by Do (and NewEngine, for a bad
// configured default) when the requested diversification strategy is
// not registered with this engine.
var ErrUnknownStrategy = diversify.ErrUnknown

// initStrategies builds the engine's strategy table from the global
// diversify registry and validates the configured default. Called once
// at construction (NewEngine/LoadEngine); clones share the table.
func (e *Engine) initStrategies() error {
	e.strategies = diversify.All(diversify.Options{
		Config:  e.cfg.Diversify,
		Hitting: e.cfg.Hitting,
	})
	name := e.cfg.Diversify.Strategy
	if name == "" {
		name = diversify.Default
	}
	if _, ok := e.strategies[name]; !ok {
		return fmt.Errorf("%w: default %q (known: %s)",
			ErrUnknownStrategy, name, strings.Join(diversify.Names(), ", "))
	}
	e.defaultStrategy = name
	return nil
}

// resolveStrategy maps a per-request strategy name (empty = the
// engine's default) to its canonical name and instance. The canonical
// name is what enters the suggestion-cache key, so "" and the default's
// explicit name address the same entries.
func (e *Engine) resolveStrategy(name string) (string, diversify.Diversifier, error) {
	if name == "" {
		name = e.defaultStrategy
	}
	d, ok := e.strategies[name]
	if !ok {
		return name, nil, fmt.Errorf("%w: %q", ErrUnknownStrategy, name)
	}
	return name, d, nil
}

// AddDiversifier registers an engine-local strategy instance under its
// Name — the hook the offline evaluation harness uses to score baseline
// suggesters (see baselines.AsDiversifier) through the same pipeline.
// Not synchronized against serving: call before the engine starts
// answering requests. Clones made afterwards share the extended table.
func (e *Engine) AddDiversifier(d diversify.Diversifier) error {
	if d == nil || d.Name() == "" {
		return errors.New("core: AddDiversifier with nil strategy or empty name")
	}
	if _, dup := e.strategies[d.Name()]; dup {
		return fmt.Errorf("core: strategy %q already registered", d.Name())
	}
	e.strategies[d.Name()] = d
	return nil
}

// DiversifyDefault returns the canonical name of the engine's default
// diversification strategy.
func (e *Engine) DiversifyDefault() string { return e.defaultStrategy }

// StrategyNames returns the names of every strategy this engine can
// serve, sorted.
func (e *Engine) StrategyNames() []string {
	out := make([]string, 0, len(e.strategies))
	for name := range e.strategies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StrategyInfo describes one servable strategy for discovery surfaces
// (GET /v1/strategies).
type StrategyInfo struct {
	Name    string         `json:"name"`
	Default bool           `json:"default"`
	Params  map[string]any `json:"params"`
}

// Diversifiers lists every servable strategy with its resolved
// configuration, sorted by name.
func (e *Engine) Diversifiers() []StrategyInfo {
	out := make([]StrategyInfo, 0, len(e.strategies))
	for _, name := range e.StrategyNames() {
		out = append(out, StrategyInfo{
			Name:    name,
			Default: name == e.defaultStrategy,
			Params:  e.strategies[name].Params(),
		})
	}
	return out
}

// topicThreshold keeps the topics scoring at least this fraction of a
// query's best topic: queries genuinely straddling facets get multi-
// topic sets, single-intent queries stay single-topic.
const topicThreshold = 0.5

// topicsOn builds the topic oracle for topic-aware strategies (PFAR)
// on one compact representation: UPM topic inference over the query's
// tokens when the snapshot has trained profiles, clicked-URL objects
// otherwise. The returned weights are the GLOBAL topic proportions
// (normalized Dirichlet prior) — deliberately user-independent, because
// the suggestion cache shares the diversified list across users.
func topicsOn(snap *snapshot.Snapshot, compact *bipartite.Compact) (func(int) []int, []float64) {
	p := snap.Profiles
	if p == nil {
		return func(local int) []int { return diversify.URLTopics(compact, local) }, nil
	}
	upm := p.UPM()
	alpha := upm.Alpha()
	sum := 0.0
	for _, a := range alpha {
		sum += a
	}
	weights := make([]float64, len(alpha))
	if sum > 0 {
		for k, a := range alpha {
			weights[k] = a / sum
		}
	}
	// Token lookup rides the snapshot symbol table when present, so
	// topic inference over pool candidates reuses the build-time token
	// lists instead of re-tokenizing per candidate per request.
	tokensOf := func(local int) []string {
		if snap.Symbols != nil {
			return snap.Symbols.Tokens(uint32(compact.QueryIDs[local]))
		}
		return querylog.Tokenize(compact.QueryName(local))
	}
	topicsOf := func(local int) []int {
		scores := make([]float64, upm.K())
		known := false
		for _, tok := range tokensOf(local) {
			w, ok := p.WordID(tok)
			if !ok {
				continue
			}
			known = true
			for k := range scores {
				scores[k] += upm.PriorWordProb(k, w)
			}
		}
		if !known {
			return nil
		}
		max := 0.0
		for _, s := range scores {
			if s > max {
				max = s
			}
		}
		if max == 0 {
			return nil
		}
		var out []int
		for k, s := range scores {
			if s >= topicThreshold*max {
				out = append(out, k)
			}
		}
		return out
	}
	return topicsOf, weights
}
