package core

import (
	"errors"

	"repro/internal/querylog"
)

// Clone returns an engine that serves identically to e but shares no
// mutable state with it. With the immutable-snapshot store this is
// cheap: the clone copies the snapshot pointer (the snapshot itself is
// never mutated after publication) and the sealed-segment list header —
// no log deep copy, no UPM deep copy. Mutators on either engine derive
// NEW snapshots and so cannot disturb the other.
//
// Clone is the foundation of non-blocking refresh: mutate the clone
// (Ingest, Refresh, LearnUser) off the serving path, then atomically
// swap it in. The original keeps serving Suggest throughout.
//
// The clone's snapshot gets the NEXT generation number and shares the
// suggestion cache: once the clone is swapped in, cache entries
// computed against the original stop being addressable (their keys
// carry the old generation) and age out of the LRU — swap-time
// invalidation without a flush. Swap sequences are serialized by the
// caller (the server's swapMu), so generations are strictly increasing
// along the chain of serving engines.
func (e *Engine) Clone() *Engine {
	out := &Engine{
		cfg:    e.cfg,
		segs:   e.segs.Clone(),
		hasLog: e.hasLog,
		cache:  e.cache,
		// Compacts are shared like the suggestion cache: keys embed
		// the generation, so the clone's bumped generation invalidates
		// without a flush.
		compacts: e.compacts,
		dirty:    e.dirty,
		// The strategy table is read-only while serving, so clones
		// share it (including AddDiversifier extras).
		strategies:      e.strategies,
		defaultStrategy: e.defaultStrategy,
	}
	out.dirtyClamps.Store(e.dirtyClamps.Load())
	prev := e.snap.Load()
	next := *prev
	next.Generation = prev.Generation + 1
	out.snap.Store(&next)
	return out
}

// CanRefresh reports whether Refresh(mode) can succeed on this engine,
// without mutating anything — callers should check it BEFORE ingesting
// entries so a rejected refresh leaves no half-applied state behind.
func (e *Engine) CanRefresh(mode RefreshMode) error {
	if !e.hasLog {
		return errors.New("core: engine has no log (loaded from a snapshot); refresh unsupported")
	}
	if mode != RebuildGraphs && e.snap.Load().Profiles == nil {
		return errors.New("core: engine has no profiles to refresh")
	}
	return nil
}

// Rebuild is the hot-swap refresh: it validates the mode, clones the
// engine, ingests the fresh entries into the clone and refreshes it
// with the engine's configured build strategy, returning the rebuilt
// engine. The receiver is never mutated and remains fully servable
// while Rebuild runs — swap the returned engine in (e.g. via
// atomic.Pointer) once it is ready.
func (e *Engine) Rebuild(entries []querylog.Entry, mode RefreshMode) (*Engine, error) {
	return e.RebuildWith(entries, mode, e.cfg.Strategy)
}

// RebuildWith is Rebuild with an explicit build strategy, overriding
// the configured default (the server's per-request "build" override).
func (e *Engine) RebuildWith(entries []querylog.Entry, mode RefreshMode, strategy RefreshStrategy) (*Engine, error) {
	if err := e.CanRefresh(mode); err != nil {
		return nil, err
	}
	next := e.Clone()
	next.Ingest(entries)
	if err := next.RefreshWith(mode, strategy); err != nil {
		return nil, err
	}
	return next, nil
}
