package core

import (
	"errors"

	"repro/internal/profile"
	"repro/internal/querylog"
)

// Clone returns an engine that serves identically to e but shares no
// mutable state with it: the log is deep-copied and, when the engine
// has profiles, so is the UPM (FoldIn mutates it in place). Immutable
// built artifacts — the representation and the corpus vocabularies —
// are shared, so a clone is cheap relative to a rebuild.
//
// Clone is the foundation of non-blocking refresh: mutate the clone
// (Ingest, Refresh, LearnUser) off the serving path, then atomically
// swap it in. The original keeps serving Suggest throughout.
//
// The clone gets the NEXT generation number and shares the suggestion
// cache: once the clone is swapped in, cache entries computed against
// the original stop being addressable (their keys carry the old
// generation) and age out of the LRU — swap-time invalidation without a
// flush. Swap sequences are serialized by the caller (the server's
// swapMu), so generations are strictly increasing along the chain of
// serving engines.
func (e *Engine) Clone() *Engine {
	out := &Engine{
		cfg:        e.cfg,
		Sessions:   e.Sessions,
		Rep:        e.Rep,
		Corpus:     e.Corpus,
		generation: e.generation + 1,
		cache:      e.cache,
		dirty:      e.dirty,
	}
	if e.Log != nil {
		out.Log = &querylog.Log{Entries: append([]querylog.Entry(nil), e.Log.Entries...)}
	}
	if e.Profiles != nil {
		out.Profiles = profile.NewStore(e.Profiles.UPM().Clone(), e.Corpus)
	}
	return out
}

// CanRefresh reports whether Refresh(mode) can succeed on this engine,
// without mutating anything — callers should check it BEFORE ingesting
// entries so a rejected refresh leaves no half-applied state behind.
func (e *Engine) CanRefresh(mode RefreshMode) error {
	if e.Log == nil {
		return errors.New("core: engine has no log (loaded from a snapshot); refresh unsupported")
	}
	if mode != RebuildGraphs && e.Profiles == nil {
		return errors.New("core: engine has no profiles to refresh")
	}
	return nil
}

// Rebuild is the hot-swap refresh: it validates the mode, clones the
// engine, ingests the fresh entries into the clone and refreshes it,
// returning the rebuilt engine. The receiver is never mutated and
// remains fully servable while Rebuild runs — swap the returned engine
// in (e.g. via atomic.Pointer) once it is ready.
func (e *Engine) Rebuild(entries []querylog.Entry, mode RefreshMode) (*Engine, error) {
	if err := e.CanRefresh(mode); err != nil {
		return nil, err
	}
	next := e.Clone()
	next.Ingest(entries)
	if err := next.Refresh(mode); err != nil {
		return nil, err
	}
	return next, nil
}
