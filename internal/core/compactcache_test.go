package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

func testEngineCompactCache(t *testing.T, w *synth.World, cacheSize int) *Engine {
	t.Helper()
	e, err := NewEngine(w.Log, Config{
		Compact:             bipartite.CompactConfig{Budget: 60},
		UPM:                 topicmodel.UPMConfig{K: 6, Iterations: 25, Seed: 1, HyperRounds: 1, HyperIters: 5},
		SkipPersonalization: true,
		CompactCache:        cacheSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// cappedFrequentQueries returns up to n distinct well-connected queries.
func cappedFrequentQueries(t *testing.T, w *synth.World, n int) []string {
	t.Helper()
	qs := frequentQueries(t, w.Log, 5)
	if len(qs) > n {
		qs = qs[:n]
	}
	return qs
}

// TestCompactCacheBitIdentical pins the cache's core contract: a
// request served from a cached compact returns exactly what an
// uncached engine returns — same suggestions, same solver telemetry.
func TestCompactCacheBitIdentical(t *testing.T) {
	w := testWorld(t)
	cached := testEngineCompactCache(t, w, 0)    // default-on
	uncached := testEngineCompactCache(t, w, -1) // disabled
	qs := cappedFrequentQueries(t, w, 5)
	now := time.Now()
	// Two passes: the second pass on the cached engine hits the LRU.
	for pass := 0; pass < 2; pass++ {
		for _, q := range qs {
			got, gerr := cached.SuggestDiversified(q, nil, now, 8)
			want, werr := uncached.SuggestDiversified(q, nil, now, 8)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("pass %d %q: err %v vs %v", pass, q, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			if !reflect.DeepEqual(got.Diversified, want.Diversified) {
				t.Fatalf("pass %d %q: diversified %v != %v", pass, q, got.Diversified, want.Diversified)
			}
			if got.SolveIterations != want.SolveIterations || got.SolveResidual != want.SolveResidual {
				t.Fatalf("pass %d %q: solve telemetry (%d, %v) != (%d, %v)",
					pass, q, got.SolveIterations, got.SolveResidual, want.SolveIterations, want.SolveResidual)
			}
		}
	}
	st := cached.CompactCacheStats()
	if st.Hits == 0 {
		t.Fatalf("no compact-cache hits across repeat passes: %+v", st)
	}
	if st.Capacity != defaultCompactCacheSize {
		t.Fatalf("capacity = %d, want default %d", st.Capacity, defaultCompactCacheSize)
	}
	if ust := uncached.CompactCacheStats(); ust != (CompactCacheStats{}) {
		t.Fatalf("disabled cache reports stats %+v", ust)
	}
}

// TestCompactCacheGenerationInvalidation ensures a hot swap cannot
// serve compacts carved from the replaced snapshot: the rebuilt
// engine's results must match a fresh engine over the grown log.
func TestCompactCacheGenerationInvalidation(t *testing.T) {
	w := testWorld(t)
	e := testEngineCompactCache(t, w, 0)
	q := pickQuery(t, w)
	now := time.Now()
	if _, err := e.SuggestDiversified(q, nil, now, 8); err != nil {
		t.Fatal(err)
	}
	missesBefore := e.CompactCacheStats().Misses

	// Grow the log and hot-swap, then re-ask the same query.
	w2 := synth.Generate(synth.Config{Seed: 99, NumFacets: 6, NumUsers: 6, SessionsPerUser: 8})
	next, err := e.Rebuild(w2.Log.Entries, RebuildGraphs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := next.SuggestDiversified(q, nil, now, 8)
	if err != nil {
		t.Fatal(err)
	}
	if next.Generation() == 1 {
		t.Fatal("rebuild did not bump the generation")
	}
	if m := next.CompactCacheStats().Misses; m == missesBefore {
		t.Fatalf("rebuilt engine served query without a fresh compact build (misses still %d)", m)
	}

	// Ground truth: an engine built directly over the combined log.
	entries := append(append([]querylog.Entry{}, w.Log.Entries...), w2.Log.Entries...)
	combined := &querylog.Log{Entries: entries}
	fresh, err := NewEngine(combined, Config{
		Compact:             bipartite.CompactConfig{Budget: 60},
		SkipPersonalization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.SuggestDiversified(q, nil, now, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Diversified, want.Diversified) {
		t.Fatalf("post-swap diversified %v != fresh engine %v", got.Diversified, want.Diversified)
	}
}

// TestCompactCacheEviction bounds residency at the configured capacity.
func TestCompactCacheEviction(t *testing.T) {
	w := testWorld(t)
	e := testEngineCompactCache(t, w, 2)
	qs := cappedFrequentQueries(t, w, 4)
	if len(qs) < 3 {
		t.Skip("fixture has too few frequent queries")
	}
	now := time.Now()
	for _, q := range qs {
		if _, err := e.SuggestDiversified(q, nil, now, 8); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CompactCacheStats()
	if st.Entries > 2 {
		t.Fatalf("cache holds %d entries, cap 2", st.Entries)
	}
	if st.Capacity != 2 {
		t.Fatalf("capacity = %d, want 2", st.Capacity)
	}
}
