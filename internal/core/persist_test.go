package core

import (
	"bytes"
	"testing"
	"time"
)

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, false)
	q := pickQuery(t, w)
	user := w.UserIDs()[0]
	at := time.Now()
	orig, err := e.Suggest(user, q, nil, at, 8)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Profiles() == nil {
		t.Fatal("profiles lost in round trip")
	}
	got, err := loaded.Suggest(user, q, nil, at, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Suggestions) != len(orig.Suggestions) {
		t.Fatalf("suggestion counts differ: %d vs %d", len(got.Suggestions), len(orig.Suggestions))
	}
	for i := range orig.Suggestions {
		if got.Suggestions[i] != orig.Suggestions[i] {
			t.Fatalf("suggestion %d differs after reload: %q vs %q",
				i, orig.Suggestions[i], got.Suggestions[i])
		}
	}
	// The persisted engine must be compact relative to the raw log
	// (the paper's "concise enough for offline storage" point is about
	// profiles, but a blown-up file would indicate we serialized the
	// log by accident).
	if size == 0 {
		t.Fatal("empty save")
	}
	t.Logf("engine file: %d bytes for %d log entries", size, w.Log.Len())
}

func TestEngineSaveLoadDiversificationOnly(t *testing.T) {
	w := testWorld(t)
	e := testEngine(t, w, true)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Profiles() != nil {
		t.Fatal("diversification-only engine grew profiles on reload")
	}
	q := pickQuery(t, w)
	if _, err := loaded.SuggestDiversified(q, nil, time.Now(), 5); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEngineGarbage(t *testing.T) {
	if _, err := LoadEngine(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadEnginePreservesPersonalization(t *testing.T) {
	// The loaded engine's preference scores must match the original's
	// exactly for every user.
	w := testWorld(t)
	e := testEngine(t, w, false)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := pickQuery(t, w)
	for _, u := range w.UserIDs()[:5] {
		a := e.Profiles().PreferenceScore(u, q, 0)
		b := loaded.Profiles().PreferenceScore(u, q, 0)
		if a != b {
			t.Fatalf("user %s: preference %v != %v after reload", u, a, b)
		}
	}
}
