package core

import (
	"sort"

	"repro/internal/bipartite"
	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/topicmodel"
)

// Ingest appends fresh query-log entries (e.g. the middleware's
// recorded traffic) to the engine's log WITHOUT rebuilding anything:
// suggestions keep using the current representation until Refresh is
// called. Ingest+Refresh are not safe to run concurrently with Suggest;
// use Rebuild (clone + refresh + swap) to refresh without blocking the
// serving path, or serialize externally.
func (e *Engine) Ingest(entries []querylog.Entry) {
	for _, en := range entries {
		e.Log.Append(en)
	}
	e.dirty = e.dirty + len(entries)
}

// PendingEntries reports how many ingested entries are not yet
// reflected in the representation.
func (e *Engine) PendingEntries() int { return e.dirty }

// RefreshMode selects how Refresh updates the user profiles.
type RefreshMode int

const (
	// RebuildGraphs re-sessionizes and rebuilds the multi-bipartite
	// representation only; profiles stay as they are (new vocabulary is
	// invisible to personalization until a retrain).
	RebuildGraphs RefreshMode = iota
	// FoldInUsers additionally folds every user with new entries into
	// the existing UPM (fast; new words stay out-of-vocabulary).
	FoldInUsers
	// RetrainProfiles additionally retrains the UPM from scratch on the
	// full log (slow; picks up new vocabulary and topic drift).
	RetrainProfiles
)

// Refresh incorporates ingested entries: the representation is rebuilt
// from the full log, and profiles are updated per mode. It returns an
// error when mode needs profiles but the engine has none.
func (e *Engine) Refresh(mode RefreshMode) error {
	if err := e.CanRefresh(mode); err != nil {
		return err
	}
	// Users with new entries, before the dirty counter resets.
	changed := map[string]bool{}
	if mode == FoldInUsers && e.dirty > 0 && e.dirty <= e.Log.Len() {
		for _, en := range e.Log.Entries[e.Log.Len()-e.dirty:] {
			changed[en.UserID] = true
		}
	}

	e.Sessions = querylog.Sessionize(e.Log, e.cfg.Sessionizer)
	e.Rep = bipartite.BuildFromSessions(e.Sessions, e.cfg.Weighting)
	e.dirty = 0

	switch mode {
	case RetrainProfiles:
		e.Corpus = topicmodel.BuildCorpus(e.Sessions, nil)
		upm := topicmodel.TrainUPM(e.Corpus, e.cfg.UPM)
		e.Profiles = profile.NewStore(upm, e.Corpus)
	case FoldInUsers:
		users := make([]string, 0, len(changed))
		for u := range changed {
			users = append(users, u)
		}
		sort.Strings(users) // deterministic fold-in order
		byUser := querylog.SessionsByUser(e.Sessions)
		for _, u := range users {
			model := topicmodel.SessionsForFoldIn(e.Corpus, byUser[u], nil)
			e.Profiles.UPM().FoldIn(u, model, 0, e.cfg.UPM.Seed)
		}
	}
	return nil
}
