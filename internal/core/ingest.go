package core

import (
	"sort"

	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/topicmodel"
)

// Ingest seals fresh query-log entries (e.g. the middleware's recorded
// traffic) into a new append-only segment WITHOUT rebuilding anything:
// suggestions keep using the current snapshot until Refresh is called.
// Ingest+Refresh are not safe to run concurrently with each other; use
// Rebuild (clone + refresh + swap) to refresh without blocking the
// serving path, or serialize externally. Suggest traffic is unaffected
// either way — it reads only the published snapshot.
func (e *Engine) Ingest(entries []querylog.Entry) {
	e.segs.Append(entries)
	e.dirty += len(entries)
}

// PendingEntries reports how many ingested entries are not yet
// reflected in the serving snapshot.
func (e *Engine) PendingEntries() int { return e.dirty }

// DirtyClamps reports how many times Refresh found the pending-entries
// counter out of sync with the sealed segments and clamped it. Nonzero
// means some caller corrupted the counter; the refresh still processed
// the true pending set.
func (e *Engine) DirtyClamps() int64 { return e.dirtyClamps.Load() }

// RefreshMode selects how Refresh updates the user profiles.
type RefreshMode int

const (
	// RebuildGraphs re-sessionizes and rebuilds the multi-bipartite
	// representation only; profiles stay as they are (new vocabulary is
	// invisible to personalization until a retrain).
	RebuildGraphs RefreshMode = iota
	// FoldInUsers additionally folds every user with new entries into
	// the existing UPM (fast; new words stay out-of-vocabulary).
	FoldInUsers
	// RetrainProfiles additionally retrains the UPM from scratch on the
	// full log (slow; picks up new vocabulary and topic drift).
	RetrainProfiles
)

// RefreshStrategy selects how Refresh rebuilds the representation.
type RefreshStrategy int

const (
	// FullRebuild re-sessionizes and recounts the entire log.
	FullRebuild RefreshStrategy = iota
	// DeltaRebuild re-segments only the affected users' session tails
	// and merges their count deltas into the previous snapshot's
	// counting state — bit-identical to FullRebuild, much faster for
	// small deltas. Falls back to a full rebuild when the previous
	// snapshot carries no counting state (e.g. loaded from disk).
	DeltaRebuild
)

// Refresh incorporates ingested entries using the engine's configured
// build strategy: a new snapshot is built (fully or incrementally),
// profiles are updated per mode, and the snapshot is swapped in. It
// returns an error when mode needs profiles but the engine has none.
func (e *Engine) Refresh(mode RefreshMode) error {
	return e.RefreshWith(mode, e.cfg.Strategy)
}

// RefreshWith is Refresh with an explicit build strategy.
func (e *Engine) RefreshWith(mode RefreshMode, strategy RefreshStrategy) error {
	if err := e.CanRefresh(mode); err != nil {
		return err
	}
	prev := e.snap.Load()

	// The pending set comes from the sealed segments past the previous
	// snapshot's coverage — the segments are the source of truth, not
	// the dirty counter. A counter that drifted (some caller mutated it,
	// or state was restored inconsistently) is clamped back and the
	// event counted, instead of silently shrinking or skipping the
	// fold-in window as the counter-derived slice used to.
	fresh := e.segs.EntriesFrom(prev.Stats.Segments)
	if e.dirty != len(fresh) {
		e.dirtyClamps.Add(1)
		e.dirty = len(fresh)
	}

	var next *snapshot.Snapshot
	if strategy == DeltaRebuild {
		n, err := e.builder().Delta(prev, fresh, e.segs.NumSegments())
		if err == nil {
			next = n
		}
		// On ErrNoState (or any delta failure) fall through to a full
		// rebuild — correctness never depends on the fast path.
	}
	if next == nil {
		next = e.builder().Full(e.segs.EntriesFrom(0), e.segs.NumSegments())
	}

	next.Corpus, next.Profiles = prev.Corpus, prev.Profiles
	switch mode {
	case RetrainProfiles:
		next.Corpus = topicmodel.BuildCorpus(next.Sessions, nil)
		upm := topicmodel.TrainUPM(next.Corpus, e.cfg.UPM)
		next.Profiles = profile.NewStore(upm, next.Corpus)
	case FoldInUsers:
		changed := map[string]bool{}
		for _, en := range fresh {
			changed[en.UserID] = true
		}
		users := make([]string, 0, len(changed))
		for u := range changed {
			users = append(users, u)
		}
		sort.Strings(users) // deterministic fold-in order
		upm := prev.Profiles.UPM().Clone()
		for _, u := range users {
			model := topicmodel.SessionsForFoldIn(prev.Corpus, next.ByUser[u], nil)
			upm.FoldIn(u, model, 0, e.cfg.UPM.Seed)
		}
		next.Profiles = profile.NewStore(upm, prev.Corpus)
	}

	// Refresh keeps the generation: the server's swap path goes
	// Clone → Ingest → Refresh, and Clone already bumped it. Bumping
	// again here would skip generations without adding invalidation.
	next.Generation = prev.Generation
	e.snap.Store(next)
	e.dirty = 0
	return nil
}
